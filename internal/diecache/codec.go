// Package diecache is the content-addressed cache in front of die
// generation. A die is a pure function of (model configuration,
// batchSeed, index) — PR 4's purity guarantee — so a canonical hash of
// the configuration plus the two seed coordinates fully identifies its
// maps. The cache layers an in-memory LRU of built values over an
// optional checksummed on-disk blob store of raw die maps, collapses
// concurrent fills for one key (single-flight), and counts hits, misses
// and bytes through internal/metrics.
package diecache

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"reflect"
)

// Codec wire format, version 1. The encoding is canonical: one byte
// sequence per semantic value, so configurations are equal exactly when
// their encodings (and, collision aside, their hashes) are. Field and
// type names are part of the stream — renaming or reordering a config
// field changes every hash, which is the invalidation rule we want: a
// schema change must never silently alias an old cache entry.
const codecVersion = 1

// Value kind tags.
const (
	tagFloat64 = byte('d')
	tagInt     = byte('i')
	tagUint    = byte('u')
	tagBool    = byte('b')
	tagString  = byte('s')
	tagStruct  = byte('S')
)

// maxCodecString bounds decoded string/name lengths so corrupt input
// cannot demand absurd allocations.
const maxCodecString = 1 << 12

// EncodeConfig canonically encodes the given configuration values. Each
// must be (or point to) a struct composed of float64s, integer kinds,
// bools, strings, and nested such structs — which every model config in
// this repository is. Unsupported kinds are an error, never a panic.
func EncodeConfig(vals ...any) ([]byte, error) {
	buf := []byte{codecVersion}
	buf = appendUint16(buf, uint16(len(vals)))
	for _, v := range vals {
		rv := reflect.ValueOf(v)
		for rv.Kind() == reflect.Pointer {
			if rv.IsNil() {
				return nil, fmt.Errorf("diecache: encode nil %s", rv.Type())
			}
			rv = rv.Elem()
		}
		buf = appendString(buf, rv.Type().String())
		var err error
		if buf, err = appendValue(buf, rv); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendUint16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func appendUint64(b []byte, v uint64) []byte {
	var w [8]byte
	binary.BigEndian.PutUint64(w[:], v)
	return append(b, w[:]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, rv reflect.Value) ([]byte, error) {
	switch rv.Kind() {
	case reflect.Float64:
		return appendUint64(append(b, tagFloat64), math.Float64bits(rv.Float())), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return appendUint64(append(b, tagInt), uint64(rv.Int())), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return appendUint64(append(b, tagUint), rv.Uint()), nil
	case reflect.Bool:
		if rv.Bool() {
			return append(b, tagBool, 1), nil
		}
		return append(b, tagBool, 0), nil
	case reflect.String:
		if len(rv.String()) > maxCodecString {
			return nil, fmt.Errorf("diecache: string field longer than %d bytes", maxCodecString)
		}
		return appendString(append(b, tagString), rv.String()), nil
	case reflect.Struct:
		t := rv.Type()
		n := 0
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).IsExported() {
				n++
			}
		}
		b = appendUint16(append(b, tagStruct), uint16(n))
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			b = appendString(b, f.Name)
			var err error
			if b, err = appendValue(b, rv.Field(i)); err != nil {
				return nil, fmt.Errorf("diecache: field %s.%s: %w", t, f.Name, err)
			}
		}
		return b, nil
	default:
		return nil, fmt.Errorf("diecache: unsupported config kind %s", rv.Kind())
	}
}

// ConfigHash returns the canonical FNV-64a hash of the encoded
// configuration values — the first coordinate of a cache Key. Two
// configurations hash equal exactly when they encode equal, i.e. when
// every exported field (recursively) is equal.
func ConfigHash(vals ...any) (uint64, error) {
	enc, err := EncodeConfig(vals...)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(enc)
	return h.Sum64(), nil
}

// decoder walks an encoded configuration with bounds-checked reads.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.b) {
		return nil, fmt.Errorf("diecache: truncated config encoding at offset %d", d.off)
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s, nil
}

func (d *decoder) uint16() (uint16, error) {
	s, err := d.bytes(2)
	if err != nil {
		return 0, err
	}
	return uint16(s[0])<<8 | uint16(s[1]), nil
}

func (d *decoder) uint64() (uint64, error) {
	s, err := d.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(s), nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uint16()
	if err != nil {
		return "", err
	}
	if int(n) > maxCodecString {
		return "", fmt.Errorf("diecache: name length %d exceeds cap", n)
	}
	s, err := d.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(s), nil
}

// DecodeConfig decodes an encoding produced by EncodeConfig into the
// given struct pointers, which must match the encoded schema (same type
// names, field names, and kinds, in order). Any deviation — truncation,
// bit flips in tags or names, trailing garbage, schema drift — returns an
// error; corrupt input never panics and never partially succeeds
// silently into a value that then hashes differently from its source.
func DecodeConfig(data []byte, ptrs ...any) error {
	d := &decoder{b: data}
	ver, err := d.bytes(1)
	if err != nil {
		return err
	}
	if ver[0] != codecVersion {
		return fmt.Errorf("diecache: config encoding version %d, want %d", ver[0], codecVersion)
	}
	n, err := d.uint16()
	if err != nil {
		return err
	}
	if int(n) != len(ptrs) {
		return fmt.Errorf("diecache: encoding holds %d values, decoding into %d", n, len(ptrs))
	}
	for _, p := range ptrs {
		rv := reflect.ValueOf(p)
		if rv.Kind() != reflect.Pointer || rv.IsNil() {
			return fmt.Errorf("diecache: decode target must be a non-nil pointer, got %T", p)
		}
		rv = rv.Elem()
		name, err := d.string()
		if err != nil {
			return err
		}
		if name != rv.Type().String() {
			return fmt.Errorf("diecache: encoded type %q does not match target %s", name, rv.Type())
		}
		if err := d.value(rv); err != nil {
			return err
		}
	}
	if d.off != len(data) {
		return fmt.Errorf("diecache: %d trailing bytes after config encoding", len(data)-d.off)
	}
	return nil
}

func (d *decoder) value(rv reflect.Value) error {
	tag, err := d.bytes(1)
	if err != nil {
		return err
	}
	switch tag[0] {
	case tagFloat64:
		if rv.Kind() != reflect.Float64 {
			return fmt.Errorf("diecache: float64 encoded where %s expected", rv.Kind())
		}
		u, err := d.uint64()
		if err != nil {
			return err
		}
		rv.SetFloat(math.Float64frombits(u))
	case tagInt:
		switch rv.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		default:
			return fmt.Errorf("diecache: int encoded where %s expected", rv.Kind())
		}
		u, err := d.uint64()
		if err != nil {
			return err
		}
		if rv.OverflowInt(int64(u)) {
			return fmt.Errorf("diecache: encoded int overflows %s", rv.Type())
		}
		rv.SetInt(int64(u))
	case tagUint:
		switch rv.Kind() {
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		default:
			return fmt.Errorf("diecache: uint encoded where %s expected", rv.Kind())
		}
		u, err := d.uint64()
		if err != nil {
			return err
		}
		if rv.OverflowUint(u) {
			return fmt.Errorf("diecache: encoded uint overflows %s", rv.Type())
		}
		rv.SetUint(u)
	case tagBool:
		if rv.Kind() != reflect.Bool {
			return fmt.Errorf("diecache: bool encoded where %s expected", rv.Kind())
		}
		v, err := d.bytes(1)
		if err != nil {
			return err
		}
		if v[0] > 1 {
			return fmt.Errorf("diecache: bool encoded as %d", v[0])
		}
		rv.SetBool(v[0] == 1)
	case tagString:
		if rv.Kind() != reflect.String {
			return fmt.Errorf("diecache: string encoded where %s expected", rv.Kind())
		}
		s, err := d.string()
		if err != nil {
			return err
		}
		rv.SetString(s)
	case tagStruct:
		if rv.Kind() != reflect.Struct {
			return fmt.Errorf("diecache: struct encoded where %s expected", rv.Kind())
		}
		n, err := d.uint16()
		if err != nil {
			return err
		}
		t := rv.Type()
		want := 0
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).IsExported() {
				want++
			}
		}
		if int(n) != want {
			return fmt.Errorf("diecache: %s encoded with %d fields, target has %d", t, n, want)
		}
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			name, err := d.string()
			if err != nil {
				return err
			}
			if name != f.Name {
				return fmt.Errorf("diecache: encoded field %q where %s.%s expected", name, t, f.Name)
			}
			if err := d.value(rv.Field(i)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("diecache: unknown value tag %#x", tag[0])
	}
	return nil
}
