package diecache

import (
	"container/list"
	"context"
	"log"
	"sync"

	"vasched/internal/grf"
	"vasched/internal/metrics"
	"vasched/internal/trace"
	"vasched/internal/varmodel"
)

// Key is the content address of one characterised die: the canonical
// hash of every configuration input that shapes it (see ConfigHash),
// the batch it belongs to, and its index within the batch. Two Envs —
// or two processes, or two cluster workers — with equal keys hold
// bit-identical dies and may share entries at every cache layer.
type Key struct {
	ConfigHash uint64
	BatchSeed  int64
	Die        int
}

// entry is a single-flight slot: the first requester fills, every
// concurrent requester for the same key waits on ready.
type entry struct {
	ready chan struct{}
	val   any
	err   error
	elem  *list.Element // LRU position; nil while filling
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits and Misses count in-memory lookups.
	Hits, Misses int64
	// DiskHits counts misses satisfied by the blob store without
	// regeneration; CorruptBlobs counts blobs rejected by validation.
	DiskHits, CorruptBlobs int64
	// BytesRead and BytesWritten count blob-store traffic.
	BytesRead, BytesWritten int64
}

// Cache memoises characterised dies across experiments, jobs, processes
// and (via shipped config hashes) cluster workers. The in-memory layer
// holds built values (chips) under an LRU bound; the optional disk layer
// holds raw die maps, so a restarted service re-characterises from local
// blobs instead of re-sampling. Fills for one key are collapsed
// (single-flight); fills for different keys proceed in parallel. Because
// die generation is deterministic, eviction and blob loss only ever cost
// time, never correctness. Safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[Key]*entry
	lru     *list.List // front = most recently used; values are Keys
	dir     string

	hits, misses, diskHits, corrupt, bytesRead, bytesWritten metrics.Counter
}

// New returns a cache holding at most cap built dies in memory (cap <= 0
// means unbounded). dir, if non-empty, enables the on-disk blob store.
func New(cap int, dir string) *Cache {
	return &Cache{cap: cap, entries: make(map[Key]*entry), lru: list.New(), dir: dir}
}

// SetDir enables (or, with "", disables) the disk blob store. Existing
// in-memory entries are unaffected.
func (c *Cache) SetDir(dir string) {
	c.mu.Lock()
	c.dir = dir
	c.mu.Unlock()
}

// Dir returns the blob-store directory ("" when disabled).
func (c *Cache) Dir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dir
}

// Get returns the cached value for key, filling on first request. A fill
// first consults the blob store, then falls back to gen; the resulting
// maps are passed to build, whose return value is what the memory layer
// holds. Concurrent Gets for one key share one fill. Waiting respects
// ctx; the fill itself is charged to the first requester and runs to
// completion so late waiters can still use it.
func (c *Cache) Get(ctx context.Context, key Key, gen func() (*varmodel.DieMaps, error), build func(*varmodel.DieMaps) (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits.Inc()
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.val, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	e := &entry{ready: make(chan struct{})}
	c.entries[key] = e
	c.misses.Inc()
	dir := c.dir
	c.mu.Unlock()

	e.val, e.err = c.fill(ctx, key, dir, gen, build)
	close(e.ready)

	c.mu.Lock()
	if c.entries[key] == e {
		if e.err != nil {
			// Do not cache failures: a later retry (e.g. after a
			// transient resource problem) should re-fill.
			delete(c.entries, key)
		} else {
			e.elem = c.lru.PushFront(key)
			c.evictLocked()
		}
	}
	c.mu.Unlock()
	return e.val, e.err
}

// fill produces the value for one missed key: blob store first, then
// generation (with a best-effort blob write-back). Each fill carries a
// trace span whose src attribute records which path satisfied it.
func (c *Cache) fill(ctx context.Context, key Key, dir string, gen func() (*varmodel.DieMaps, error), build func(*varmodel.DieMaps) (any, error)) (any, error) {
	ctx, sp := trace.Start(ctx, "diecache.fill",
		trace.Int64("batch", key.BatchSeed), trace.Int("die", key.Die))
	defer sp.End()
	src := "generate"
	var maps *varmodel.DieMaps
	if dir != "" {
		m, n, err := loadBlob(dir, key)
		switch {
		case err != nil:
			// A corrupt blob must be loud — it means disk rot or a
			// writer bug — but never fatal: regeneration is
			// bit-identical to what the blob should have held.
			c.corrupt.Inc()
			log.Printf("diecache: discarding blob for %016x/%d/%d, regenerating: %v",
				key.ConfigHash, key.BatchSeed, key.Die, err)
			trace.Event(ctx, "diecache.corrupt")
		case m != nil:
			c.diskHits.Inc()
			c.bytesRead.Add(int64(n))
			maps, src = m, "disk"
		}
	}
	if maps == nil {
		m, err := gen()
		if err != nil {
			return nil, err
		}
		maps = m
		if dir != "" {
			if n, err := saveBlob(dir, key, maps); err != nil {
				// Best-effort: a full or read-only disk degrades to
				// in-memory caching only.
				log.Printf("diecache: writing blob for %016x/%d/%d: %v",
					key.ConfigHash, key.BatchSeed, key.Die, err)
			} else {
				c.bytesWritten.Add(int64(n))
			}
		}
	}
	sp.AddAttr(trace.String("src", src))
	return build(maps)
}

// evictLocked drops least-recently-used completed entries until the
// memory layer fits its cap. In-flight fills are never evicted — waiters
// hold their channel — and eviction never touches the blob store.
func (c *Cache) evictLocked() {
	if c.cap <= 0 {
		return
	}
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		if back == nil {
			return
		}
		key := back.Value.(Key)
		c.lru.Remove(back)
		delete(c.entries, key)
	}
}

// Len returns the number of in-memory (or in-flight) entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cumulative counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:         c.hits.Value(),
		Misses:       c.misses.Value(),
		DiskHits:     c.diskHits.Value(),
		CorruptBlobs: c.corrupt.Value(),
		BytesRead:    c.bytesRead.Value(),
		BytesWritten: c.bytesWritten.Value(),
	}
}

// fieldFrom wraps raw map data in a grf.Field.
func fieldFrom(rows, cols int, data []float64) *grf.Field {
	return &grf.Field{Rows: rows, Cols: cols, Data: data}
}
