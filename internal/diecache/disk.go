package diecache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"

	"vasched/internal/varmodel"
)

// Disk blob format: a fixed header, the two systematic maps, and an
// FNV-64a checksum of everything before it. The key is echoed into the
// header so a blob renamed (or hash-colliding) onto the wrong path is
// rejected rather than silently served as a different die.
//
//	magic      "vdm1"
//	configHash u64
//	batchSeed  u64 (two's-complement int64)
//	die        u64 (two's-complement int64)
//	rows, cols u32
//	vthSigmaRan, leffSigmaRan f64 (IEEE bits)
//	seed       u64 (two's-complement int64)
//	cfgLen     u32, then cfgLen bytes of EncodeConfig(maps.Cfg)
//	vthData    rows*cols f64
//	leffData   rows*cols f64
//	checksum   u64 (FNV-64a of all preceding bytes)
//
// Embedding the canonical config encoding keeps blobs self-contained (a
// DieMaps carries its Config) and means the disk layer round-trips
// through the exact codec the content hash is built on.
var diskMagic = [4]byte{'v', 'd', 'm', '1'}

// ErrCorrupt reports a blob that failed structural or checksum
// validation. Callers fall back to regeneration: determinism means a
// rebuilt die is bit-identical to what the blob should have held.
var ErrCorrupt = errors.New("diecache: corrupt die blob")

// maxBlobCells caps the map size a blob may claim, so a corrupt header
// cannot demand a multi-gigabyte allocation before the checksum is even
// consulted (16M cells = two 128 MiB maps).
const maxBlobCells = 16 << 20

// blobPath is the content address of a key inside dir. Seeds are
// rendered as fixed-width two's-complement hex so negative batch seeds
// produce filesystem-safe, unambiguous names.
func blobPath(dir string, key Key) string {
	name := fmt.Sprintf("%016x_%016x_%016x.die", key.ConfigHash, uint64(key.BatchSeed), uint64(int64(key.Die)))
	return filepath.Join(dir, name)
}

// encodeBlob serialises maps for key. An unencodable Cfg is impossible
// for the real varmodel.Config (flat scalars); the error covers misuse.
func encodeBlob(key Key, maps *varmodel.DieMaps) ([]byte, error) {
	cfgEnc, err := EncodeConfig(maps.Cfg)
	if err != nil {
		return nil, err
	}
	rows, cols := maps.VthSys.Rows, maps.VthSys.Cols
	n := rows * cols
	buf := make([]byte, 0, 4+8*4+8+8+8+4+len(cfgEnc)+16*n+8)
	buf = append(buf, diskMagic[:]...)
	buf = appendUint64(buf, key.ConfigHash)
	buf = appendUint64(buf, uint64(key.BatchSeed))
	buf = appendUint64(buf, uint64(int64(key.Die)))
	var w [4]byte
	binary.BigEndian.PutUint32(w[:], uint32(rows))
	buf = append(buf, w[:]...)
	binary.BigEndian.PutUint32(w[:], uint32(cols))
	buf = append(buf, w[:]...)
	buf = appendUint64(buf, math.Float64bits(maps.VthSigmaRan))
	buf = appendUint64(buf, math.Float64bits(maps.LeffSigmaRan))
	buf = appendUint64(buf, uint64(maps.Seed))
	binary.BigEndian.PutUint32(w[:], uint32(len(cfgEnc)))
	buf = append(buf, w[:]...)
	buf = append(buf, cfgEnc...)
	for _, v := range maps.VthSys.Data {
		buf = appendUint64(buf, math.Float64bits(v))
	}
	for _, v := range maps.LeffSys.Data {
		buf = appendUint64(buf, math.Float64bits(v))
	}
	h := fnv.New64a()
	h.Write(buf)
	return appendUint64(buf, h.Sum64()), nil
}

// decodeBlob validates data against key and reassembles the maps,
// including the embedded Config.
func decodeBlob(data []byte, key Key) (*varmodel.DieMaps, error) {
	const header = 4 + 8*3 + 4 + 4 + 8*3 + 4
	if len(data) < header+8 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any valid blob", ErrCorrupt, len(data))
	}
	h := fnv.New64a()
	h.Write(data[:len(data)-8])
	if got := binary.BigEndian.Uint64(data[len(data)-8:]); got != h.Sum64() {
		return nil, fmt.Errorf("%w: checksum %016x, want %016x", ErrCorrupt, got, h.Sum64())
	}
	d := &decoder{b: data[:len(data)-8]}
	magic, _ := d.bytes(4)
	if [4]byte(magic) != diskMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	ch, _ := d.uint64()
	bs, _ := d.uint64()
	die, _ := d.uint64()
	if ch != key.ConfigHash || int64(bs) != key.BatchSeed || int64(die) != int64(key.Die) {
		return nil, fmt.Errorf("%w: blob is keyed (%016x,%d,%d), want (%016x,%d,%d)",
			ErrCorrupt, ch, int64(bs), int64(die), key.ConfigHash, key.BatchSeed, key.Die)
	}
	rb, _ := d.bytes(4)
	cb, err := d.bytes(4)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	rows := int(binary.BigEndian.Uint32(rb))
	cols := int(binary.BigEndian.Uint32(cb))
	if rows <= 0 || cols <= 0 || rows*cols > maxBlobCells {
		return nil, fmt.Errorf("%w: implausible map shape %dx%d", ErrCorrupt, rows, cols)
	}
	vthRan, _ := d.uint64()
	leffRan, _ := d.uint64()
	seed, err := d.uint64()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	clb, err := d.bytes(4)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	cfgLen := int(binary.BigEndian.Uint32(clb))
	if cfgLen > 1<<16 {
		return nil, fmt.Errorf("%w: implausible %d-byte config encoding", ErrCorrupt, cfgLen)
	}
	cfgEnc, err := d.bytes(cfgLen)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated config encoding", ErrCorrupt)
	}
	var cfg varmodel.Config
	if err := DecodeConfig(cfgEnc, &cfg); err != nil {
		return nil, fmt.Errorf("%w: embedded config: %v", ErrCorrupt, err)
	}
	n := rows * cols
	if len(d.b)-d.off != 16*n {
		return nil, fmt.Errorf("%w: %d payload bytes for %dx%d maps", ErrCorrupt, len(d.b)-d.off, rows, cols)
	}
	read := func() []float64 {
		out := make([]float64, n)
		for i := range out {
			u, _ := d.uint64()
			out[i] = math.Float64frombits(u)
		}
		return out
	}
	maps := &varmodel.DieMaps{
		Cfg:          cfg,
		VthSigmaRan:  math.Float64frombits(vthRan),
		LeffSigmaRan: math.Float64frombits(leffRan),
		Seed:         int64(seed),
	}
	maps.VthSys = fieldFrom(rows, cols, read())
	maps.LeffSys = fieldFrom(rows, cols, read())
	return maps, nil
}

// saveBlob writes the blob atomically (tmp + rename), so a crashed or
// concurrent writer can never leave a torn file a later reader would
// have to distrust: readers see either nothing or a complete blob, and
// the checksum backstops everything else.
func saveBlob(dir string, key Key, maps *varmodel.DieMaps) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	data, err := encodeBlob(key, maps)
	if err != nil {
		return 0, err
	}
	path := blobPath(dir, key)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return len(data), nil
}

// loadBlob reads and validates the blob for key. A missing file returns
// (nil, 0, nil); a present-but-invalid one returns ErrCorrupt.
func loadBlob(dir string, key Key) (*varmodel.DieMaps, int, error) {
	data, err := os.ReadFile(blobPath(dir, key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	maps, err := decodeBlob(data, key)
	if err != nil {
		return nil, 0, err
	}
	return maps, len(data), nil
}
