// Package loadsnap defines the LOAD_<date>.json capacity snapshot that
// cmd/vaschedload writes and cmd/benchstatus regresses against — the
// load-test sibling of the BENCH_*.json benchmark baselines. A snapshot
// records what one sustained mixed-tenant run of vaschedd delivered:
// achieved throughput, SLO percentiles from both the service histograms
// and the client's own clock, lane-fairness counters, queue-depth
// series, and the host fingerprint that makes cross-machine comparisons
// loudly advisory instead of silently wrong.
package loadsnap

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Quantiles are latency percentiles in seconds.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// SLO is the asserted thresholds (seconds; zero disables a threshold).
type SLO struct {
	ClientP50 float64 `json:"client_p50,omitempty"`
	ClientP99 float64 `json:"client_p99,omitempty"`
	JobP99    float64 `json:"job_p99,omitempty"`
	DecideP99 float64 `json:"decide_p99,omitempty"`
}

// Counts are the run's outcome tallies. Lost must be zero: every job
// the harness got a 202 for must reach a terminal state, across any
// injected coordinator crash.
type Counts struct {
	Submitted   int64 `json:"submitted"`
	Done        int64 `json:"done"`
	Cancelled   int64 `json:"cancelled"`
	Failed      int64 `json:"failed"`
	Rejected429 int64 `json:"rejected_429"`
	Retries     int64 `json:"retries"`
	Restarts    int64 `json:"restarts"`
	Lost        int64 `json:"lost"`
}

// Snapshot is the persisted LOAD_<date>.json document.
type Snapshot struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	// Run shape: the seeded workload mix that produced the numbers.
	Seed           int64   `json:"seed"`
	Jobs           int     `json:"jobs"`
	Tenants        int     `json:"tenants"`
	Clients        int     `json:"clients"`
	ClusterWorkers int     `json:"cluster_workers,omitempty"`
	RateHz         float64 `json:"rate_hz,omitempty"`

	// Delivered capacity. JobsPerSec is terminal jobs over the measured
	// wall clock; MaxSustainedJobsPerSec is that rate when every SLO
	// held (the capacity claim the regression gate protects), 0 when one
	// did not.
	DurationSec            float64 `json:"duration_sec"`
	JobsPerSec             float64 `json:"jobs_per_sec"`
	MaxSustainedJobsPerSec float64 `json:"max_sustained_jobs_per_sec"`
	SLOPass                bool    `json:"slo_pass"`
	SLO                    SLO     `json:"slo"`

	// Latency sources: "client" is submit→terminal on the client's
	// clock (exact quantiles), "job" and "decide" are estimated from the
	// scraped vaschedd_job_seconds / vaschedd_decide_seconds buckets.
	Latency map[string]Quantiles `json:"latency_seconds"`

	Counts Counts `json:"counts"`

	// LaneDequeues are the scraped vaschedd_lane_dequeues_total wins per
	// lane — delivered fairness next to the configured 16/4/1 weights.
	LaneDequeues map[string]int64 `json:"lane_dequeues,omitempty"`

	// QueueDepth is the sampled total queued-job series over the run;
	// LaneDepth breaks it down per lane.
	QueueDepth []int            `json:"queue_depth,omitempty"`
	LaneDepth  map[string][]int `json:"lane_depth,omitempty"`
}

// Fingerprint renders the host identity the snapshot's rates are bound
// to, in the same shape the BENCH_*.json baselines use.
func (s *Snapshot) Fingerprint() string {
	cpu := "cpu?"
	if s.NumCPU > 0 {
		cpu = fmt.Sprintf("cpu%d", s.NumCPU)
	}
	return fmt.Sprintf("%s/%s/%s", s.GOOS, s.GOARCH, cpu)
}

// Capacity is the number the regression gate compares: the sustained
// rate when the SLOs held, falling back to the raw rate for snapshots
// recorded before the distinction (or runs that asserted no SLOs).
func (s *Snapshot) Capacity() float64 {
	if s.MaxSustainedJobsPerSec > 0 {
		return s.MaxSustainedJobsPerSec
	}
	return s.JobsPerSec
}

// Read loads and validates a snapshot file.
func Read(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &s, nil
}

// Validate rejects snapshots that cannot gate anything.
func (s *Snapshot) Validate() error {
	switch {
	case s.Date == "":
		return fmt.Errorf("loadsnap: missing date")
	case s.Counts.Submitted <= 0:
		return fmt.Errorf("loadsnap: no submitted jobs")
	case s.JobsPerSec <= 0:
		return fmt.Errorf("loadsnap: non-positive jobs_per_sec")
	case s.DurationSec <= 0:
		return fmt.Errorf("loadsnap: non-positive duration_sec")
	case s.Counts.Lost != 0:
		return fmt.Errorf("loadsnap: snapshot records %d lost jobs", s.Counts.Lost)
	}
	return nil
}

// Write marshals the snapshot to path (indented, trailing newline, like
// the BENCH_*.json files).
func (s *Snapshot) Write(path string) error {
	if err := s.Validate(); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Latest returns the newest LOAD_*.json in dir ("" when none exist).
// Dates are ISO-8601, so lexical order is temporal.
func Latest(dir string) string {
	matches, _ := filepath.Glob(filepath.Join(dir, "LOAD_*.json"))
	if len(matches) == 0 {
		return ""
	}
	sort.Strings(matches)
	return matches[len(matches)-1]
}

// Delta is one comparison finding.
type Delta struct {
	Metric   string
	Old, New float64
	// Pct is the relative change in percent; for capacity, negative is
	// worse.
	Pct        float64
	Regression bool
}

// Compare evaluates cur against prev with the given regression
// threshold in percent (>threshold capacity drop regresses; latency
// deltas are informational). FingerprintMismatch is set when the hosts
// differ — rates from different machines are not comparable and any
// regression finding is advisory.
func Compare(prev, cur *Snapshot, thresholdPct float64) (deltas []Delta, fingerprintMismatch bool) {
	fingerprintMismatch = prev.Fingerprint() != cur.Fingerprint()
	capDelta := Delta{Metric: "capacity jobs/s", Old: prev.Capacity(), New: cur.Capacity()}
	if capDelta.Old > 0 {
		capDelta.Pct = (capDelta.New - capDelta.Old) / capDelta.Old * 100
		capDelta.Regression = capDelta.Pct < -thresholdPct
	}
	deltas = append(deltas, capDelta)
	for _, src := range []string{"client", "job", "decide"} {
		po, okO := prev.Latency[src]
		pn, okN := cur.Latency[src]
		if !okO || !okN || po.P99 <= 0 {
			continue
		}
		d := Delta{Metric: src + " p99 s", Old: po.P99, New: pn.P99}
		d.Pct = (d.New - d.Old) / d.Old * 100
		deltas = append(deltas, d)
	}
	return deltas, fingerprintMismatch
}
