package loadsnap

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *Snapshot {
	return &Snapshot{
		Date: "2026-08-08", GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 4,
		Seed: 42, Jobs: 1000, Tenants: 3, Clients: 16,
		DurationSec: 60, JobsPerSec: 16.6, MaxSustainedJobsPerSec: 16.6, SLOPass: true,
		SLO:          SLO{ClientP99: 30, JobP99: 30},
		Latency:      map[string]Quantiles{"client": {P50: 0.3, P95: 1.2, P99: 2.5}, "job": {P50: 0.05, P95: 0.4, P99: 1.1}},
		Counts:       Counts{Submitted: 1000, Done: 980, Cancelled: 20, Restarts: 1},
		LaneDequeues: map[string]int64{"control": 160, "interactive": 40, "batch": 10},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "LOAD_2026-08-08.json")
	s := sample()
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.JobsPerSec != s.JobsPerSec || got.Counts != s.Counts || got.Latency["client"] != s.Latency["client"] {
		t.Fatalf("round trip changed the snapshot: %+v", got)
	}
	raw, _ := os.ReadFile(path)
	if !strings.HasSuffix(string(raw), "}\n") {
		t.Fatal("snapshot file missing trailing newline")
	}
}

func TestValidate(t *testing.T) {
	for name, mut := range map[string]func(*Snapshot){
		"no date":     func(s *Snapshot) { s.Date = "" },
		"no jobs":     func(s *Snapshot) { s.Counts.Submitted = 0 },
		"no rate":     func(s *Snapshot) { s.JobsPerSec = 0 },
		"no duration": func(s *Snapshot) { s.DurationSec = 0 },
		"lost jobs":   func(s *Snapshot) { s.Counts.Lost = 3 },
	} {
		s := sample()
		mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
		if err := s.Write(filepath.Join(t.TempDir(), "x.json")); err == nil {
			t.Errorf("%s: wrote anyway", name)
		}
	}
	if err := sample().Validate(); err != nil {
		t.Fatalf("good snapshot rejected: %v", err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "LOAD_x.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := Read(bad); err == nil {
		t.Fatal("garbage parsed")
	}
	if _, err := Read(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file read")
	}
}

func TestLatest(t *testing.T) {
	dir := t.TempDir()
	if got := Latest(dir); got != "" {
		t.Fatalf("Latest(empty) = %q", got)
	}
	for _, name := range []string{"LOAD_2026-01-02.json", "LOAD_2026-08-08.json", "LOAD_2025-12-31.json", "BENCH_2026-09-09.json"} {
		os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644)
	}
	if got := Latest(dir); filepath.Base(got) != "LOAD_2026-08-08.json" {
		t.Fatalf("Latest = %q", got)
	}
}

func TestFingerprintAndCapacity(t *testing.T) {
	s := sample()
	if fp := s.Fingerprint(); fp != "linux/amd64/cpu4" {
		t.Fatalf("fingerprint = %q", fp)
	}
	s.NumCPU = 0
	if fp := s.Fingerprint(); fp != "linux/amd64/cpu?" {
		t.Fatalf("no-cpu fingerprint = %q", fp)
	}
	if c := s.Capacity(); c != s.MaxSustainedJobsPerSec {
		t.Fatalf("capacity = %g", c)
	}
	s.MaxSustainedJobsPerSec = 0 // SLO-less or failed run: raw rate gates
	if c := s.Capacity(); c != s.JobsPerSec {
		t.Fatalf("fallback capacity = %g", c)
	}
}

func TestCompare(t *testing.T) {
	prev, cur := sample(), sample()

	// Flat: no regression.
	deltas, mismatch := Compare(prev, cur, 20)
	if mismatch {
		t.Fatal("same host flagged as mismatch")
	}
	if deltas[0].Regression || deltas[0].Pct != 0 {
		t.Fatalf("flat compare = %+v", deltas[0])
	}

	// 30% capacity drop beyond the 20% threshold regresses; 10% does not.
	cur.MaxSustainedJobsPerSec = prev.MaxSustainedJobsPerSec * 0.7
	deltas, _ = Compare(prev, cur, 20)
	if !deltas[0].Regression {
		t.Fatalf("30%% drop not flagged: %+v", deltas[0])
	}
	cur.MaxSustainedJobsPerSec = prev.MaxSustainedJobsPerSec * 0.9
	deltas, _ = Compare(prev, cur, 20)
	if deltas[0].Regression {
		t.Fatalf("10%% drop flagged: %+v", deltas[0])
	}

	// Capacity gains never regress.
	cur.MaxSustainedJobsPerSec = prev.MaxSustainedJobsPerSec * 2
	if deltas, _ = Compare(prev, cur, 20); deltas[0].Regression {
		t.Fatal("improvement flagged as regression")
	}

	// Latency deltas ride along informationally.
	cur = sample()
	cur.Latency["client"] = Quantiles{P50: 0.3, P95: 1.2, P99: 5.0}
	deltas, _ = Compare(prev, cur, 20)
	found := false
	for _, d := range deltas {
		if d.Metric == "client p99 s" {
			found = true
			if d.Regression {
				t.Fatalf("latency delta gated: %+v", d)
			}
			if d.Pct < 99 {
				t.Fatalf("latency pct = %+v", d)
			}
		}
	}
	if !found {
		t.Fatalf("no client p99 delta in %+v", deltas)
	}

	// Different hosts: advisory.
	cur = sample()
	cur.NumCPU = 64
	if _, mismatch = Compare(prev, cur, 20); !mismatch {
		t.Fatal("cross-host compare not flagged")
	}
}
