package linsolve

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	a := []float64{2, 1, 1, 3}
	x, err := SolveDense(a, 2, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveIdentity(t *testing.T) {
	n := 5
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 1
	}
	b := []float64{1, 2, 3, 4, 5}
	x, err := SolveDense(a, n, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestSingularDetected(t *testing.T) {
	a := []float64{1, 2, 2, 4} // rank 1
	if _, err := SolveDense(a, 2, []float64{1, 2}); err == nil {
		t.Fatal("singular matrix not detected")
	}
}

func TestPivotingHandlesZeroDiagonal(t *testing.T) {
	// Leading zero requires a row swap.
	a := []float64{0, 1, 1, 0}
	x, err := SolveDense(a, 2, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestFactorReuse(t *testing.T) {
	a := []float64{4, 1, 1, 3}
	f, err := Factor(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range [][]float64{{1, 0}, {0, 1}, {5, -2}} {
		x, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		y := MatVec(a, 2, x)
		for i := range b {
			if math.Abs(y[i]-b[i]) > 1e-10 {
				t.Fatalf("residual for b=%v: %v", b, y)
			}
		}
	}
}

func TestDimensionErrors(t *testing.T) {
	if _, err := Factor([]float64{1, 2, 3}, 2); err == nil {
		t.Fatal("bad matrix size accepted")
	}
	f, err := Factor([]float64{1, 0, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Fatal("bad rhs size accepted")
	}
}

func TestFactorDoesNotMutateInput(t *testing.T) {
	a := []float64{3, 1, 2, 5}
	orig := append([]float64(nil), a...)
	if _, err := Factor(a, 2); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != orig[i] {
			t.Fatal("Factor mutated its input")
		}
	}
}

// Property: for random diagonally dominant systems, A*Solve(b) == b.
func TestSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					a[i*n+j] = r.NormFloat64()
					rowSum += math.Abs(a[i*n+j])
				}
			}
			a[i*n+i] = rowSum + 1 + r.Float64() // strictly dominant
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64() * 10
		}
		x, err := SolveDense(a, n, b)
		if err != nil {
			return false
		}
		y := MatVec(a, n, x)
		for i := range b {
			if math.Abs(y[i]-b[i]) > 1e-8*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFactorSolve128(b *testing.B) {
	n := 128
	r := rand.New(rand.NewSource(3))
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = r.NormFloat64()
		}
		a[i*n+i] += float64(n)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveDense(a, n, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
