// Package linsolve provides the small dense linear-algebra kernel the
// thermal model needs: LU factorization with partial pivoting and
// triangular solves. Matrices are stored row-major in flat slices.
package linsolve

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when factorization meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("linsolve: singular matrix")

// LU is a factorization P*A = L*U usable for repeated solves against the
// same matrix (the thermal model re-solves each leakage iteration).
type LU struct {
	n    int
	lu   []float64
	perm []int
}

// Factor computes the LU factorization of the n x n matrix a (row-major).
// The input is not modified.
func Factor(a []float64, n int) (*LU, error) {
	if len(a) != n*n {
		return nil, fmt.Errorf("linsolve: matrix buffer has %d elements, want %d", len(a), n*n)
	}
	lu := append([]float64(nil), a...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivoting: find the largest magnitude in this column.
		pivot := col
		maxAbs := math.Abs(lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu[r*n+col]); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			for c := 0; c < n; c++ {
				lu[col*n+c], lu[pivot*n+c] = lu[pivot*n+c], lu[col*n+c]
			}
			perm[col], perm[pivot] = perm[pivot], perm[col]
		}
		inv := 1 / lu[col*n+col]
		for r := col + 1; r < n; r++ {
			f := lu[r*n+col] * inv
			lu[r*n+col] = f
			for c := col + 1; c < n; c++ {
				lu[r*n+c] -= f * lu[col*n+c]
			}
		}
	}
	return &LU{n: n, lu: lu, perm: perm}, nil
}

// Solve returns x with A x = b. b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("linsolve: rhs has %d elements, want %d", len(b), f.n)
	}
	x := make([]float64, f.n)
	// Apply permutation and forward-substitute L (unit diagonal).
	for i := 0; i < f.n; i++ {
		s := b[f.perm[i]]
		for j := 0; j < i; j++ {
			s -= f.lu[i*f.n+j] * x[j]
		}
		x[i] = s
	}
	// Back-substitute U.
	for i := f.n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < f.n; j++ {
			s -= f.lu[i*f.n+j] * x[j]
		}
		x[i] = s / f.lu[i*f.n+i]
	}
	return x, nil
}

// SolveDense is a convenience one-shot solve of A x = b.
func SolveDense(a []float64, n int, b []float64) ([]float64, error) {
	f, err := Factor(a, n)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// MatVec returns A x for an n x n row-major matrix.
func MatVec(a []float64, n int, x []float64) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		row := a[i*n : (i+1)*n]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}
