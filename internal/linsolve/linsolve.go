// Package linsolve provides the small dense linear-algebra kernel the
// thermal model needs: LU factorization with partial pivoting and
// triangular solves. Matrices are stored row-major in flat slices.
package linsolve

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when factorization meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("linsolve: singular matrix")

// LU is a factorization P*A = L*U usable for repeated solves against the
// same matrix (the thermal model re-solves each leakage iteration).
type LU struct {
	n    int
	lu   []float64
	perm []int
}

// Factor computes the LU factorization of the n x n matrix a (row-major).
// The input is not modified.
func Factor(a []float64, n int) (*LU, error) {
	if len(a) != n*n {
		return nil, fmt.Errorf("linsolve: matrix buffer has %d elements, want %d", len(a), n*n)
	}
	lu := append([]float64(nil), a...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivoting: find the largest magnitude in this column.
		pivot := col
		maxAbs := math.Abs(lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu[r*n+col]); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			for c := 0; c < n; c++ {
				lu[col*n+c], lu[pivot*n+c] = lu[pivot*n+c], lu[col*n+c]
			}
			perm[col], perm[pivot] = perm[pivot], perm[col]
		}
		inv := 1 / lu[col*n+col]
		pivRow := lu[col*n+col+1 : (col+1)*n]
		for r := col + 1; r < n; r++ {
			rowR := lu[r*n : (r+1)*n : (r+1)*n]
			f := rowR[col] * inv
			rowR[col] = f
			tail := rowR[col+1:]
			for k, pv := range pivRow {
				tail[k] -= f * pv
			}
		}
	}
	return &LU{n: n, lu: lu, perm: perm}, nil
}

// SolveInto solves A x = b into the caller-provided x, so repeated solves
// (the thermal fixed point, the transient stepper) can run without
// allocating. b is not modified. x must not alias b: forward substitution
// reads b under the row permutation after earlier entries of x are
// written.
func (f *LU) SolveInto(x, b []float64) error {
	if len(b) != f.n {
		return fmt.Errorf("linsolve: rhs has %d elements, want %d", len(b), f.n)
	}
	if len(x) != f.n {
		return fmt.Errorf("linsolve: solution buffer has %d elements, want %d", len(x), f.n)
	}
	n := f.n
	// Apply permutation and forward-substitute L (unit diagonal). Slicing
	// x to the row length lets the compiler drop the inner bounds checks.
	for i := 0; i < n; i++ {
		s := b[f.perm[i]]
		row := f.lu[i*n : i*n+i]
		xs := x[:len(row)]
		for j, v := range row {
			s -= v * xs[j]
		}
		x[i] = s
	}
	// Back-substitute U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu[i*n+i : (i+1)*n]
		tail := row[1:]
		xt := x[i+1:][:len(tail)]
		s := x[i]
		for j, v := range tail {
			s -= v * xt[j]
		}
		x[i] = s / row[0]
	}
	return nil
}

// Solve returns x with A x = b. b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.n)
	if err := f.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveDense is a convenience one-shot solve of A x = b.
func SolveDense(a []float64, n int, b []float64) ([]float64, error) {
	f, err := Factor(a, n)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// MatVec returns A x for an n x n row-major matrix.
func MatVec(a []float64, n int, x []float64) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		row := a[i*n : (i+1)*n]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}
