package linsolve

import "testing"

// benchSystem builds a diagonally dominant system of the thermal model's
// scale (the 20-core floorplan has 121 blocks).
func benchSystem(n int) ([]float64, []float64) {
	a := make([]float64, n*n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				a[i*n+j] = 4
			} else if i-j == 1 || j-i == 1 {
				a[i*n+j] = -1
			}
		}
		b[i] = float64(i%7) + 1
	}
	return a, b
}

func BenchmarkFactor(b *testing.B) {
	a, _ := benchSystem(121)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(a, 121); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLUSolve is the triangular-substitution kernel every thermal
// solve reduces to.
func BenchmarkLUSolve(b *testing.B) {
	a, rhs := benchSystem(121)
	f, err := Factor(a, 121)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLUSolveScratch is BenchmarkLUSolve through the zero-allocation
// SolveInto API.
func BenchmarkLUSolveScratch(b *testing.B) {
	a, rhs := benchSystem(121)
	f, err := Factor(a, 121)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 121)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.SolveInto(x, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
