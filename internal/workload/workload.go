// Package workload provides the application models the evaluation runs on.
// The paper uses 14 SPEC CPU2000 applications (8 SPECint + 6 SPECfp) run
// under the SESC simulator; here each application is a profile whose
// headline numbers — dynamic core power at 4 GHz/1 V and average IPC —
// are calibrated to the paper's Table 5, together with the
// microarchitectural characteristics (memory intensity, branch behaviour,
// working set, phase structure) that the core and cache models need to
// reproduce frequency- and time-dependent behaviour.
package workload

import (
	"fmt"
	"math"

	"vasched/internal/stats"
)

// Phase is one program phase: a stretch of execution with scaled IPC and
// activity. Phases are what make periodic LinOpt re-solving worthwhile
// (paper Figure 14).
type Phase struct {
	// DurationMS is the phase length in milliseconds of execution at
	// nominal frequency.
	DurationMS float64
	// IPCScale multiplies the application's base IPC during this phase.
	IPCScale float64
	// PowerScale multiplies the application's base dynamic power.
	PowerScale float64
}

// AppProfile describes one application.
type AppProfile struct {
	// Name is the SPEC benchmark name.
	Name string
	// FP reports whether this is a SPECfp benchmark.
	FP bool
	// DynPowerW is the average dynamic core power (core + L1, paper
	// Table 5) at 4 GHz and 1 V.
	DynPowerW float64
	// IPCNom is the average IPC at the 4 GHz reference (paper Table 5).
	IPCNom float64
	// L1MPKI and L2MPKI are misses per kilo-instruction at the reference
	// cache configuration. L2MPKI sets how strongly IPC degrades as
	// frequency rises (memory latency is constant in nanoseconds);
	// L1MPKI sets the L2 access rate for L2 dynamic power.
	L1MPKI float64
	L2MPKI float64
	// MLP is the memory-level parallelism: the average number of
	// overlapping outstanding misses.
	MLP float64
	// MemAccessFrac is the fraction of instructions that access memory.
	MemAccessFrac float64
	// BranchFrac and BranchMispredRate drive the pipeline-flush term.
	BranchFrac        float64
	BranchMispredRate float64
	// WorkingSetKB and StridedFrac shape the synthetic address stream the
	// cache simulator consumes.
	WorkingSetKB float64
	StridedFrac  float64
	// Phases describes time-varying behaviour; an empty slice means the
	// application is steady.
	Phases []Phase
}

// Validate reports profile inconsistencies.
func (a *AppProfile) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("workload: unnamed profile")
	}
	if a.DynPowerW <= 0 || a.IPCNom <= 0 {
		return fmt.Errorf("workload: %s: non-positive Table 5 numbers", a.Name)
	}
	if a.L1MPKI < 0 || a.L2MPKI < 0 || a.L2MPKI > a.L1MPKI || a.MLP < 1 {
		return fmt.Errorf("workload: %s: invalid memory behaviour", a.Name)
	}
	if a.MemAccessFrac < 0 || a.MemAccessFrac > 1 ||
		a.BranchFrac < 0 || a.BranchFrac > 1 ||
		a.BranchMispredRate < 0 || a.BranchMispredRate > 1 ||
		a.StridedFrac < 0 || a.StridedFrac > 1 {
		return fmt.Errorf("workload: %s: fraction out of range", a.Name)
	}
	for i, p := range a.Phases {
		if p.DurationMS <= 0 || p.IPCScale <= 0 || p.PowerScale <= 0 {
			return fmt.Errorf("workload: %s: invalid phase %d", a.Name, i)
		}
	}
	return nil
}

// neutralPhase is what steady applications (and degenerate phase lists)
// report: unit scales, so downstream models see the profile's base numbers.
var neutralPhase = Phase{DurationMS: 1, IPCScale: 1, PowerScale: 1}

// PhaseAt returns the phase active after elapsedMS milliseconds of
// execution, cycling through the phase list. Steady applications return a
// neutral phase.
func (a *AppProfile) PhaseAt(elapsedMS float64) Phase {
	_, p := a.PhaseIndexAt(elapsedMS)
	return p
}

// PhaseIndexAt is PhaseAt plus the index of the active phase within
// Phases, so time-stepped callers can detect phase transitions. Steady
// applications report index 0 with the neutral phase. Cycling uses
// math.Mod, so the cost is independent of how far elapsedMS is beyond one
// period (long-horizon simulations push it years out), and a phase list
// whose total duration is not positive — zero-length phases are rejected
// by Validate but can be constructed directly — degrades to the neutral
// phase instead of looping forever.
func (a *AppProfile) PhaseIndexAt(elapsedMS float64) (int, Phase) {
	if len(a.Phases) == 0 {
		return 0, neutralPhase
	}
	total := 0.0
	for _, p := range a.Phases {
		total += p.DurationMS
	}
	if total <= 0 {
		return 0, neutralPhase
	}
	t := elapsedMS
	if t >= total {
		t = math.Mod(t, total)
	}
	for i, p := range a.Phases {
		// Strict less-than: an elapsed time exactly on a phase edge
		// belongs to the *next* phase (and exactly on the period edge, to
		// phase 0 of the next cycle, which math.Mod already delivered).
		// Zero-length phases can therefore never be selected.
		if t < p.DurationMS {
			return i, p
		}
		t -= p.DurationMS
	}
	return len(a.Phases) - 1, a.Phases[len(a.Phases)-1]
}

// SPEC returns the paper's 14-application pool. DynPowerW and IPCNom are
// Table 5 verbatim; the microarchitectural fields are set to widely
// reported SPEC CPU2000 characteristics consistent with those numbers
// (memory-bound codes get high MPKI, control codes get misprediction
// pressure).
func SPEC() []*AppProfile {
	apps := []*AppProfile{
		// SPECint
		{Name: "bzip2", DynPowerW: 3.7, IPCNom: 1.1, L1MPKI: 14, L2MPKI: 1.2, MLP: 2.0,
			MemAccessFrac: 0.33, BranchFrac: 0.13, BranchMispredRate: 0.06,
			WorkingSetKB: 5000, StridedFrac: 0.65,
			Phases: []Phase{{DurationMS: 240, IPCScale: 1.15, PowerScale: 1.15},
				{DurationMS: 150, IPCScale: 0.8, PowerScale: 0.8}}},
		{Name: "crafty", DynPowerW: 3.9, IPCNom: 1.1, L1MPKI: 9, L2MPKI: 0.3, MLP: 1.5,
			MemAccessFrac: 0.36, BranchFrac: 0.11, BranchMispredRate: 0.08,
			WorkingSetKB: 2000, StridedFrac: 0.4},
		{Name: "gap", DynPowerW: 3.5, IPCNom: 1.0, L1MPKI: 6, L2MPKI: 0.8, MLP: 1.8,
			MemAccessFrac: 0.36, BranchFrac: 0.16, BranchMispredRate: 0.04,
			WorkingSetKB: 4000, StridedFrac: 0.55},
		{Name: "gzip", DynPowerW: 2.7, IPCNom: 0.7, L1MPKI: 20, L2MPKI: 1.0, MLP: 1.6,
			MemAccessFrac: 0.30, BranchFrac: 0.16, BranchMispredRate: 0.07,
			WorkingSetKB: 4000, StridedFrac: 0.6,
			Phases: []Phase{{DurationMS: 180, IPCScale: 1.2, PowerScale: 1.2},
				{DurationMS: 180, IPCScale: 0.85, PowerScale: 0.8}}},
		{Name: "mcf", DynPowerW: 1.5, IPCNom: 0.1, L1MPKI: 85, L2MPKI: 33.0, MLP: 2.4,
			MemAccessFrac: 0.39, BranchFrac: 0.19, BranchMispredRate: 0.09,
			WorkingSetKB: 96000, StridedFrac: 0.1,
			Phases: []Phase{{DurationMS: 400, IPCScale: 1.2, PowerScale: 1.1},
				{DurationMS: 200, IPCScale: 0.8, PowerScale: 0.9}}},
		{Name: "parser", DynPowerW: 2.8, IPCNom: 0.7, L1MPKI: 18, L2MPKI: 2.0, MLP: 1.6,
			MemAccessFrac: 0.35, BranchFrac: 0.17, BranchMispredRate: 0.08,
			WorkingSetKB: 10000, StridedFrac: 0.3,
			Phases: []Phase{{DurationMS: 220, IPCScale: 1.1, PowerScale: 1.1},
				{DurationMS: 180, IPCScale: 0.9, PowerScale: 0.9}}},
		{Name: "twolf", DynPowerW: 2.3, IPCNom: 0.4, L1MPKI: 25, L2MPKI: 3.5, MLP: 1.4,
			MemAccessFrac: 0.31, BranchFrac: 0.14, BranchMispredRate: 0.11,
			WorkingSetKB: 12000, StridedFrac: 0.2},
		{Name: "vortex", DynPowerW: 4.4, IPCNom: 1.2, L1MPKI: 10, L2MPKI: 0.8, MLP: 1.9,
			MemAccessFrac: 0.40, BranchFrac: 0.15, BranchMispredRate: 0.02,
			WorkingSetKB: 4000, StridedFrac: 0.5},
		// SPECfp
		{Name: "applu", FP: true, DynPowerW: 4.3, IPCNom: 1.1, L1MPKI: 22, L2MPKI: 2.5, MLP: 3.5,
			MemAccessFrac: 0.40, BranchFrac: 0.03, BranchMispredRate: 0.02,
			WorkingSetKB: 16000, StridedFrac: 0.9,
			Phases: []Phase{{DurationMS: 300, IPCScale: 1.1, PowerScale: 1.1},
				{DurationMS: 120, IPCScale: 0.75, PowerScale: 0.8}}},
		{Name: "apsi", FP: true, DynPowerW: 1.6, IPCNom: 0.1, L1MPKI: 40, L2MPKI: 18.0, MLP: 1.8,
			MemAccessFrac: 0.40, BranchFrac: 0.04, BranchMispredRate: 0.03,
			WorkingSetKB: 60000, StridedFrac: 0.7},
		{Name: "art", FP: true, DynPowerW: 2.4, IPCNom: 0.2, L1MPKI: 55, L2MPKI: 16.0, MLP: 2.8,
			MemAccessFrac: 0.36, BranchFrac: 0.09, BranchMispredRate: 0.02,
			WorkingSetKB: 48000, StridedFrac: 0.8,
			Phases: []Phase{{DurationMS: 250, IPCScale: 1.3, PowerScale: 1.2},
				{DurationMS: 250, IPCScale: 0.7, PowerScale: 0.8}}},
		{Name: "equake", FP: true, DynPowerW: 2.1, IPCNom: 0.3, L1MPKI: 30, L2MPKI: 9.0, MLP: 2.2,
			MemAccessFrac: 0.42, BranchFrac: 0.07, BranchMispredRate: 0.03,
			WorkingSetKB: 30000, StridedFrac: 0.7,
			Phases: []Phase{{DurationMS: 150, IPCScale: 1.15, PowerScale: 1.1},
				{DurationMS: 150, IPCScale: 0.85, PowerScale: 0.9}}},
		{Name: "mgrid", FP: true, DynPowerW: 2.2, IPCNom: 0.4, L1MPKI: 19, L2MPKI: 5.5, MLP: 3.2,
			MemAccessFrac: 0.45, BranchFrac: 0.02, BranchMispredRate: 0.02,
			WorkingSetKB: 20000, StridedFrac: 0.95},
		{Name: "swim", FP: true, DynPowerW: 2.2, IPCNom: 0.3, L1MPKI: 28, L2MPKI: 10.0, MLP: 3.8,
			MemAccessFrac: 0.41, BranchFrac: 0.02, BranchMispredRate: 0.01,
			WorkingSetKB: 40000, StridedFrac: 0.95,
			Phases: []Phase{{DurationMS: 210, IPCScale: 1.2, PowerScale: 1.15},
				{DurationMS: 210, IPCScale: 0.8, PowerScale: 0.85}}},
	}
	return apps
}

// ByName returns the profile with the given name from SPEC(), or an error.
func ByName(name string) (*AppProfile, error) {
	for _, a := range SPEC() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown application %q", name)
}

// Mix draws n applications (with replacement once the pool is exhausted,
// without replacement before) to build one multiprogrammed workload, the
// way the paper constructs its 1-20 thread experiments.
func Mix(rng *stats.RNG, n int) []*AppProfile {
	pool := SPEC()
	out := make([]*AppProfile, 0, n)
	perm := rng.Perm(len(pool))
	for i := 0; i < n; i++ {
		if i < len(pool) {
			out = append(out, pool[perm[i]])
		} else {
			out = append(out, pool[rng.Intn(len(pool))])
		}
	}
	return out
}

// Trials builds the paper's experiment structure: trials independent
// workloads of n threads each (the paper repeats each experiment 20 times
// with different application sets and reports the average).
func Trials(seed int64, trials, n int) [][]*AppProfile {
	rng := stats.NewRNG(seed)
	out := make([][]*AppProfile, trials)
	for t := range out {
		out[t] = Mix(rng.Derive(int64(t)), n)
	}
	return out
}
