package workload

import (
	"math"
	"testing"

	"vasched/internal/stats"
)

func TestSPECPoolMatchesTable5(t *testing.T) {
	// The paper's Table 5 numbers, verbatim.
	table5 := map[string][2]float64{
		"applu": {4.3, 1.1}, "apsi": {1.6, 0.1}, "art": {2.4, 0.2},
		"bzip2": {3.7, 1.1}, "crafty": {3.9, 1.1}, "equake": {2.1, 0.3},
		"gap": {3.5, 1.0}, "gzip": {2.7, 0.7}, "mcf": {1.5, 0.1},
		"mgrid": {2.2, 0.4}, "parser": {2.8, 0.7}, "swim": {2.2, 0.3},
		"twolf": {2.3, 0.4}, "vortex": {4.4, 1.2},
	}
	pool := SPEC()
	if len(pool) != len(table5) {
		t.Fatalf("pool has %d apps, want %d", len(pool), len(table5))
	}
	for _, a := range pool {
		want, ok := table5[a.Name]
		if !ok {
			t.Fatalf("unexpected app %q", a.Name)
		}
		if a.DynPowerW != want[0] || a.IPCNom != want[1] {
			t.Fatalf("%s: (%v, %v), want (%v, %v)", a.Name, a.DynPowerW, a.IPCNom, want[0], want[1])
		}
	}
}

func TestAllProfilesValidate(t *testing.T) {
	for _, a := range SPEC() {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	good, err := ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	mut := []func(*AppProfile){
		func(a *AppProfile) { a.Name = "" },
		func(a *AppProfile) { a.DynPowerW = 0 },
		func(a *AppProfile) { a.IPCNom = -1 },
		func(a *AppProfile) { a.L2MPKI = a.L1MPKI + 1 },
		func(a *AppProfile) { a.MLP = 0.5 },
		func(a *AppProfile) { a.MemAccessFrac = 1.2 },
		func(a *AppProfile) { a.BranchMispredRate = -0.1 },
		func(a *AppProfile) { a.Phases = []Phase{{DurationMS: 0, IPCScale: 1, PowerScale: 1}} },
	}
	for i, f := range mut {
		a := *good
		f(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("mcf")
	if err != nil || a.Name != "mcf" {
		t.Fatalf("ByName(mcf) = %v, %v", a, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestPhaseAtSteadyApp(t *testing.T) {
	a, err := ByName("crafty") // no phases
	if err != nil {
		t.Fatal(err)
	}
	p := a.PhaseAt(123.4)
	if p.IPCScale != 1 || p.PowerScale != 1 {
		t.Fatalf("steady app phase = %+v", p)
	}
}

func TestPhaseAtCycles(t *testing.T) {
	a := &AppProfile{
		Name: "x", DynPowerW: 1, IPCNom: 1, MLP: 1, L1MPKI: 1, L2MPKI: 1,
		Phases: []Phase{
			{DurationMS: 10, IPCScale: 2, PowerScale: 1},
			{DurationMS: 5, IPCScale: 0.5, PowerScale: 1},
		},
	}
	cases := []struct {
		at   float64
		want float64
	}{
		{0, 2}, {9.99, 2}, {10, 0.5}, {14.9, 0.5},
		{15, 2},     // wrapped
		{25.5, 0.5}, // wrapped into second phase
		{30, 2},     // two full cycles
	}
	for _, c := range cases {
		if got := a.PhaseAt(c.at); got.IPCScale != c.want {
			t.Errorf("PhaseAt(%v).IPCScale = %v, want %v", c.at, got.IPCScale, c.want)
		}
	}
}

func TestMixSmallDrawsDistinct(t *testing.T) {
	rng := stats.NewRNG(5)
	mix := Mix(rng, 8)
	if len(mix) != 8 {
		t.Fatalf("mix size = %d", len(mix))
	}
	seen := map[string]bool{}
	for _, a := range mix {
		if seen[a.Name] {
			t.Fatalf("duplicate %s in 8-app mix (pool has 14)", a.Name)
		}
		seen[a.Name] = true
	}
}

func TestMixLargeAllowsRepeats(t *testing.T) {
	rng := stats.NewRNG(5)
	mix := Mix(rng, 20)
	if len(mix) != 20 {
		t.Fatalf("mix size = %d", len(mix))
	}
	// First 14 must be the full pool.
	seen := map[string]bool{}
	for _, a := range mix[:14] {
		seen[a.Name] = true
	}
	if len(seen) != 14 {
		t.Fatalf("first 14 draws covered %d distinct apps", len(seen))
	}
}

func TestTrialsDeterministicAndVaried(t *testing.T) {
	a := Trials(9, 5, 4)
	b := Trials(9, 5, 4)
	if len(a) != 5 {
		t.Fatalf("trials = %d", len(a))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j].Name != b[i][j].Name {
				t.Fatal("same seed produced different trials")
			}
		}
	}
	// Different trials should not all be identical.
	same := true
	for j := range a[0] {
		if a[0][j].Name != a[1][j].Name {
			same = false
			break
		}
	}
	if same {
		t.Fatal("trial 0 and 1 drew identical workloads")
	}
}

func TestStreamGenStaysInWorkingSet(t *testing.T) {
	a, err := ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	g := NewStreamGen(a, stats.NewRNG(1))
	ws := uint64(a.WorkingSetKB * 1024)
	reads, writes := 0, 0
	for i := 0; i < 20000; i++ {
		acc := g.Next()
		if acc.Addr >= ws {
			t.Fatalf("access %d at %d outside working set %d", i, acc.Addr, ws)
		}
		if acc.Kind == Write {
			writes++
		} else {
			reads++
		}
	}
	frac := float64(writes) / float64(reads+writes)
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("write fraction = %v, want ~0.3", frac)
	}
}

func TestStreamGenLocalityDiffers(t *testing.T) {
	// A strided app's stream must have far more sequential (64-byte line
	// reuse/adjacency) behaviour than a pointer-chasing app's.
	seqScore := func(name string) float64 {
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := NewStreamGen(a, stats.NewRNG(2))
		prev := uint64(0)
		seq := 0
		const n = 20000
		for i := 0; i < n; i++ {
			acc := g.Next()
			if acc.Addr >= prev && acc.Addr-prev <= 64 {
				seq++
			}
			prev = acc.Addr
		}
		return float64(seq) / n
	}
	if seqScore("mgrid") <= seqScore("mcf")+0.2 {
		t.Fatal("strided app stream not more sequential than pointer-chasing app")
	}
}

func TestStreamGenFill(t *testing.T) {
	a, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	g := NewStreamGen(a, stats.NewRNG(3))
	buf := g.Fill(nil, 100)
	if len(buf) != 100 {
		t.Fatalf("Fill returned %d accesses", len(buf))
	}
	buf = g.Fill(buf, 50)
	if len(buf) != 150 {
		t.Fatalf("Fill append returned %d accesses", len(buf))
	}
}

func TestStreamGenTinyWorkingSetFloor(t *testing.T) {
	a := &AppProfile{Name: "tiny", DynPowerW: 1, IPCNom: 1, MLP: 1,
		L1MPKI: 1, L2MPKI: 0.5, MemAccessFrac: 0.3, WorkingSetKB: 1}
	g := NewStreamGen(a, stats.NewRNG(4))
	for i := 0; i < 1000; i++ {
		if acc := g.Next(); acc.Addr >= 4096 {
			t.Fatalf("access outside floored working set: %d", acc.Addr)
		}
	}
}

func TestPhaseIndexAtBoundaries(t *testing.T) {
	a := &AppProfile{
		Name: "x", DynPowerW: 1, IPCNom: 1, MLP: 1, L1MPKI: 1, L2MPKI: 1,
		Phases: []Phase{
			{DurationMS: 10, IPCScale: 2, PowerScale: 1},
			{DurationMS: 5, IPCScale: 0.5, PowerScale: 1},
		},
	}
	cases := []struct {
		name string
		at   float64
		idx  int
	}{
		{"start", 0, 0},
		{"inside first", 9.99, 0},
		{"exact phase edge belongs to next", 10, 1},
		{"inside second", 14.9, 1},
		{"exact period edge wraps to first", 15, 0},
		{"beyond one period", 25.5, 1},
		{"many periods out", 15*1e6 + 3, 0},
	}
	for _, c := range cases {
		idx, p := a.PhaseIndexAt(c.at)
		if idx != c.idx {
			t.Errorf("%s: PhaseIndexAt(%v) = %d, want %d", c.name, c.at, idx, c.idx)
		}
		if p != a.Phases[idx] {
			t.Errorf("%s: index %d but phase %+v", c.name, idx, p)
		}
	}
}

func TestPhaseIndexAtDegenerateLists(t *testing.T) {
	steady := &AppProfile{Name: "s", DynPowerW: 1, IPCNom: 1, MLP: 1, L1MPKI: 1, L2MPKI: 1}
	if idx, p := steady.PhaseIndexAt(1e9); idx != 0 || p.IPCScale != 1 || p.PowerScale != 1 {
		t.Fatalf("steady app: idx %d phase %+v", idx, p)
	}
	// Zero-length phases are rejected by Validate but constructible; the
	// lookup must neither loop forever nor select one.
	zero := &AppProfile{
		Name: "z", DynPowerW: 1, IPCNom: 1, MLP: 1, L1MPKI: 1, L2MPKI: 1,
		Phases: []Phase{{DurationMS: 0, IPCScale: 9, PowerScale: 9}},
	}
	if idx, p := zero.PhaseIndexAt(3); idx != 0 || p.IPCScale != 1 {
		t.Fatalf("zero-total list: idx %d phase %+v", idx, p)
	}
	mixed := &AppProfile{
		Name: "m", DynPowerW: 1, IPCNom: 1, MLP: 1, L1MPKI: 1, L2MPKI: 1,
		Phases: []Phase{
			{DurationMS: 0, IPCScale: 9, PowerScale: 9},
			{DurationMS: 4, IPCScale: 2, PowerScale: 1},
		},
	}
	// An elapsed time of 0 sits exactly on the zero-length phase's edge and
	// must skip past it.
	if idx, _ := mixed.PhaseIndexAt(0); idx != 1 {
		t.Fatalf("zero-length phase selected: idx %d", idx)
	}
	if idx, _ := mixed.PhaseIndexAt(4); idx != 1 {
		t.Fatalf("wrap over zero-length phase: idx %d", idx)
	}
}
