package workload

import "vasched/internal/stats"

// AccessKind distinguishes reads from writes in a synthetic stream.
type AccessKind int

// Access kinds.
const (
	Read AccessKind = iota
	Write
)

// Access is one synthetic memory reference.
type Access struct {
	Addr uint64
	Kind AccessKind
}

// StreamGen produces a synthetic data-reference stream with the profile's
// locality structure, built from two components:
//
//   - A hot region (the temporally resident set, capped at 2 MB so it fits
//     the shared L2 with room to spare) that receives most references,
//     as a mix of unit-stride sweeps and random touches in the proportion
//     the profile's StridedFrac prescribes. These references hit in the
//     cache hierarchy after warmup and set the L1 behaviour.
//   - Cold references that march monotonically through the remainder of
//     the working set, touching fresh cache lines. For working sets that
//     exceed the L2, these are guaranteed capacity misses; their rate is
//     derived from the profile's L2MPKI, which is how the stream is
//     calibrated to reproduce the profile's off-chip behaviour in the
//     cache and pipeline simulators.
type StreamGen struct {
	prof     *AppProfile
	rng      *stats.RNG
	wsBytes  uint64
	hotBytes uint64
	coldSpan uint64 // working set beyond the hot region (0 if it all fits)
	coldProb float64
	coldCur  uint64
	cursor   uint64 // sequential walk position within the hot region
	runLeft  int    // remaining accesses in the current sequential run
	randLeft int    // remaining accesses in the current random burst
	writePct float64
}

// hotCapBytes caps the resident set; it comfortably fits the 8 MB shared
// L2 while overflowing the 16 KB L1, so L1 locality comes from the strided
// component, as in real codes.
const hotCapBytes = 2 << 20

// NewStreamGen builds a generator for prof with its own random stream.
func NewStreamGen(prof *AppProfile, rng *stats.RNG) *StreamGen {
	ws := uint64(prof.WorkingSetKB * 1024)
	if ws < 4096 {
		ws = 4096
	}
	hot := ws
	if hot > hotCapBytes {
		hot = hotCapBytes
	}
	g := &StreamGen{
		prof:     prof,
		rng:      rng,
		wsBytes:  ws,
		hotBytes: hot,
		coldSpan: ws - hot,
		writePct: 0.3, // roughly 1 store per 2.3 loads across SPEC
	}
	// Cold-reference rate from the profile's L2 miss target: misses per
	// access = (L2MPKI/1000) / MemAccessFrac.
	if g.coldSpan > 0 && prof.MemAccessFrac > 0 {
		g.coldProb = prof.L2MPKI / 1000 / prof.MemAccessFrac
		if g.coldProb > 0.5 {
			g.coldProb = 0.5
		}
	}
	return g
}

// Next returns the next synthetic access.
func (g *StreamGen) Next() Access {
	kind := Read
	if g.rng.Float64() < g.writePct {
		kind = Write
	}
	if g.coldProb > 0 && g.rng.Float64() < g.coldProb {
		// March through the cold span one fresh line at a time.
		g.coldCur = (g.coldCur + 64) % g.coldSpan
		return Access{Addr: g.hotBytes + g.coldCur, Kind: kind}
	}
	if g.runLeft > 0 {
		g.runLeft--
		g.cursor = (g.cursor + 8) % g.hotBytes
		return Access{Addr: g.cursor, Kind: kind}
	}
	if g.randLeft > 0 {
		g.randLeft--
		return Access{Addr: uint64(g.rng.Int63()) % g.hotBytes, Kind: kind}
	}
	// Start a new burst. Sequential runs and random bursts have the same
	// expected length, so StridedFrac is the expected *fraction of
	// accesses* that are sequential, not just the per-burst probability.
	length := 16 + g.rng.Intn(112)
	if g.rng.Float64() < g.prof.StridedFrac {
		g.runLeft = length - 1
		g.cursor = uint64(g.rng.Int63()) % g.hotBytes
		return Access{Addr: g.cursor, Kind: kind}
	}
	g.randLeft = length - 1
	return Access{Addr: uint64(g.rng.Int63()) % g.hotBytes, Kind: kind}
}

// Fill appends n accesses to dst and returns it.
func (g *StreamGen) Fill(dst []Access, n int) []Access {
	for i := 0; i < n; i++ {
		dst = append(dst, g.Next())
	}
	return dst
}
