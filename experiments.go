package vasched

import (
	"context"
	"fmt"

	"vasched/internal/experiments"
	"vasched/internal/metrics"
)

// Scale selects how much work RunExperiment does.
type Scale string

// Experiment scales.
const (
	// ScaleQuick uses small die batches and short timelines — seconds per
	// experiment, suitable for smoke tests.
	ScaleQuick Scale = "quick"
	// ScaleDefault uses the paper's 200-die batches and longer timelines.
	ScaleDefault Scale = "default"
)

// ExperimentIDs lists the runnable reproductions of the paper's tables and
// figures ("table5", "fig4" ... "fig15", "sec74", "sann"); see DESIGN.md
// section 3 for the mapping.
func ExperimentIDs() []string { return experiments.IDs() }

// RunOption adjusts how RunExperimentResult executes an experiment.
type RunOption func(*runConfig)

type runConfig struct {
	workers    int
	ctx        context.Context
	decideHist *metrics.LatencyHist
	cluster    experiments.ShardRunner
	adaptive   *experiments.AdaptiveConfig
}

// WithWorkers bounds the die-level parallelism of the farm engine: n
// worker goroutines fan the experiment's die batch (0 means GOMAXPROCS,
// 1 reproduces the serial path). Results are bit-identical at every
// setting (see internal/farm).
func WithWorkers(n int) RunOption {
	return func(c *runConfig) { c.workers = n }
}

// WithContext attaches a cancellation context: cancelling it stops
// in-flight die work between farm tasks and aborts the experiment.
func WithContext(ctx context.Context) RunOption {
	return func(c *runConfig) { c.ctx = ctx }
}

// WithDecideHist collects the latency of every power-manager Decide call
// the experiment makes into h (one Observe per call, in seconds). The
// histogram is safe to share across concurrent experiments; passing it
// does not change any experiment output.
func WithDecideHist(h *metrics.LatencyHist) RunOption {
	return func(c *runConfig) { c.decideHist = h }
}

// WithCluster routes the experiment's kernel-based die loops through a
// sharded worker cluster (internal/cluster's Client is the production
// ShardRunner; cmd/vaschedd -workers wires it up). Clustered runs are
// byte-identical to local ones, and a run degrades back to local
// execution when the whole cluster is unavailable, so attaching a
// cluster never changes any experiment output.
func WithCluster(r experiments.ShardRunner) RunOption {
	return func(c *runConfig) { c.cluster = r }
}

// WithAdaptive switches the ext-adapt experiment into adaptive stratified
// sampling: dies are drawn from severity strata round by round until the
// target metric's confidence interval is tight enough, instead of always
// evaluating the full population (see internal/adapt and DESIGN.md §12).
// cfg.Exact selects the verification mode, which evaluates every die in
// index order and reproduces the exact full-batch mean bit-for-bit.
// Experiments other than ext-adapt ignore the option entirely.
func WithAdaptive(cfg experiments.AdaptiveConfig) RunOption {
	return func(c *runConfig) { c.adaptive = &cfg }
}

// RunExperiment executes one experiment and returns its rendered report.
func RunExperiment(id string, scale Scale, opts ...RunOption) (string, error) {
	res, err := RunExperimentResult(id, scale, opts...)
	if err != nil {
		return "", err
	}
	return res.Render(), nil
}

// ExperimentResult is a typed experiment outcome: it renders as the
// paper's plot/table and marshals to JSON through its exported fields
// (every experiment result is a plain struct).
type ExperimentResult interface {
	Render() string
}

// RunExperimentResult executes one experiment and returns its typed
// result, for callers that want the numbers rather than the rendering.
// Every result is a plain exported struct that marshals to JSON and back
// without loss (the cmd/vaschedd job API relies on this).
func RunExperimentResult(id string, scale Scale, opts ...RunOption) (ExperimentResult, error) {
	var cfg runConfig
	for _, o := range opts {
		o(&cfg)
	}
	var (
		env *experiments.Env
		err error
	)
	switch scale {
	case ScaleQuick:
		env, err = experiments.QuickEnv()
	case ScaleDefault, "":
		env, err = experiments.DefaultEnv()
	default:
		return nil, fmt.Errorf("vasched: unknown scale %q", scale)
	}
	if err != nil {
		return nil, err
	}
	env.Workers = cfg.workers
	if cfg.ctx != nil {
		env.SetContext(cfg.ctx)
	}
	env.DecideHist = cfg.decideHist
	if cfg.cluster != nil {
		env.Cluster = cfg.cluster
	}
	env.Adaptive = cfg.adaptive
	return experiments.Run(id, env)
}
