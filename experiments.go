package vasched

import (
	"fmt"

	"vasched/internal/experiments"
)

// Scale selects how much work RunExperiment does.
type Scale string

// Experiment scales.
const (
	// ScaleQuick uses small die batches and short timelines — seconds per
	// experiment, suitable for smoke tests.
	ScaleQuick Scale = "quick"
	// ScaleDefault uses the paper's 200-die batches and longer timelines.
	ScaleDefault Scale = "default"
)

// ExperimentIDs lists the runnable reproductions of the paper's tables and
// figures ("table5", "fig4" ... "fig15", "sec74", "sann"); see DESIGN.md
// section 3 for the mapping.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment executes one experiment and returns its rendered report.
func RunExperiment(id string, scale Scale) (string, error) {
	res, err := RunExperimentResult(id, scale)
	if err != nil {
		return "", err
	}
	return res.Render(), nil
}

// ExperimentResult is a typed experiment outcome: it renders as the
// paper's plot/table and marshals to JSON through its exported fields
// (every experiment result is a plain struct).
type ExperimentResult interface {
	Render() string
}

// RunExperimentResult executes one experiment and returns its typed
// result, for callers that want the numbers rather than the rendering.
func RunExperimentResult(id string, scale Scale) (ExperimentResult, error) {
	var (
		env *experiments.Env
		err error
	)
	switch scale {
	case ScaleQuick:
		env, err = experiments.QuickEnv()
	case ScaleDefault, "":
		env, err = experiments.DefaultEnv()
	default:
		return nil, fmt.Errorf("vasched: unknown scale %q", scale)
	}
	if err != nil {
		return nil, err
	}
	return experiments.Run(id, env)
}
