// Benchmarks: one per paper table/figure (regenerating the artefact at the
// quick scale each iteration; see cmd/vasched -scale default for the
// paper-scale runs) plus the ablation benches DESIGN.md section 4 calls
// out. Custom metrics attached via ReportMetric surface the reproduced
// numbers — e.g. linopt_vs_foxton_pct on BenchmarkFig11 — next to the
// timing.
package vasched_test

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"vasched/internal/core"
	"vasched/internal/experiments"
	"vasched/internal/pm"
	"vasched/internal/sched"
	"vasched/internal/stats"
	"vasched/internal/workload"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

// env returns a shared quick-scale environment; chips are cached inside
// it, so repeated iterations measure the experiment itself, not die
// generation.
//
// The returned Env is SHARED across every benchmark in this file and
// must be treated as immutable: a benchmark that wrote to it (Workers,
// Scale, ...) would leak that state into whichever benchmarks happen to
// run after it, making results order-dependent. A benchmark that needs
// different settings must build its own Env (see BenchmarkFarmFig4,
// which owns a private QuickEnv so it can vary Workers).
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.QuickEnv()
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) experiments.Renderer {
	e := env(b)
	var last experiments.Renderer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, e)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	return last
}

func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

func BenchmarkFig4(b *testing.B) {
	r := benchExperiment(b, "fig4").(*experiments.Fig4Result)
	b.ReportMetric(r.MeanPowerRatio(), "power_ratio")
	b.ReportMetric(r.MeanFreqRatio(), "freq_ratio")
}

func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

func BenchmarkFig9(b *testing.B) {
	r := benchExperiment(b, "fig9").(*experiments.SchedSweepResult)
	// VarF&AppIPC throughput gain over Random at 8 threads (paper: 5-10%).
	gain := r.Rel("VarF&AppIPC", 2, func(c experiments.SchedCell) float64 { return c.MIPS })
	b.ReportMetric((gain-1)*100, "varfappipc_mips_gain_pct")
}

func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

func BenchmarkFig11(b *testing.B) {
	r := benchExperiment(b, "fig11").(*experiments.DVFSSweepResult)
	// Headline: VarF&AppIPC+LinOpt vs Random+Foxton* at 20 threads.
	mips := r.Rel("VarF&AppIPC+LinOpt", 3, func(c experiments.DVFSCell) float64 { return c.MIPS })
	ed2 := r.Rel("VarF&AppIPC+LinOpt", 3, func(c experiments.DVFSCell) float64 { return c.EDSquared })
	b.ReportMetric((mips-1)*100, "linopt_mips_gain_pct")
	b.ReportMetric((1-ed2)*100, "linopt_ed2_reduction_pct")
}

func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

func BenchmarkFig14(b *testing.B) {
	r := benchExperiment(b, "fig14").(*experiments.Fig14Result)
	b.ReportMetric(r.Deviation(10, 20), "dev_at_10ms_pct")
	b.ReportMetric(r.Deviation(2000, 20), "dev_at_2s_pct")
}

func BenchmarkFig15(b *testing.B) {
	r := benchExperiment(b, "fig15").(*experiments.Fig15Result)
	b.ReportMetric(float64(r.Solve("Cost-Performance", 20).Microseconds()), "linopt_solve_20t_us")
}

func BenchmarkSec74(b *testing.B) { benchExperiment(b, "sec74") }

// BenchmarkFarmFig4 compares the farm engine's serial path against the
// parallel one on the same workload (fig4 at quick scale). Both variants
// share the process-wide die cache, so after the first iteration they
// measure the experiment body, not die characterisation; on a multi-core
// host the parallel variant should approach a GOMAXPROCS-fold speedup,
// and its output is bit-identical either way (see
// experiments.TestParallelMatchesSerial).
func BenchmarkFarmFig4(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			e, err := experiments.QuickEnv()
			if err != nil {
				b.Fatal(err)
			}
			e.Workers = bc.workers
			if _, err := experiments.Run("fig4", e); err != nil { // warm the die cache
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Run("fig4", e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSAnnVsExhaustive(b *testing.B) {
	r := benchExperiment(b, "sann").(*experiments.SAnnValidationResult)
	b.ReportMetric(r.Rows[len(r.Rows)-1].GapPct, "sann_gap_pct")
}

// frozen builds a frozen 20-thread platform snapshot for the ablations.
func frozen(b *testing.B, threads int) (pm.Platform, pm.Budget) {
	b.Helper()
	e := env(b)
	c, err := e.Chip(0)
	if err != nil {
		b.Fatal(err)
	}
	apps := workload.Mix(stats.NewRNG(3), threads)
	plat, err := core.FrozenSnapshot(c, e.CPU(), apps, 7)
	if err != nil {
		b.Fatal(err)
	}
	return plat, experiments.CostPerformance.Budget(threads, 20)
}

func modelTP(p pm.Platform, levels []int) float64 {
	sum := 0.0
	for c, l := range levels {
		sum += p.IPC(c) * p.FreqAt(c, l) / 1e6
	}
	return sum
}

// BenchmarkAblationFitPoints compares LinOpt's 3-point power fit against
// the paper's "at the very least 2" variant (DESIGN.md ablation 1).
func BenchmarkAblationFitPoints(b *testing.B) {
	plat, budget := frozen(b, 20)
	for _, fit := range []int{2, 3} {
		fit := fit
		name := map[int]string{2: "2pt", 3: "3pt"}[fit]
		b.Run(name, func(b *testing.B) {
			m := pm.LinOpt{FitPoints: fit}
			var tp float64
			for i := 0; i < b.N; i++ {
				levels, err := m.Decide(context.Background(), plat, budget, stats.NewRNG(9))
				if err != nil {
					b.Fatal(err)
				}
				tp = modelTP(plat, levels)
			}
			b.ReportMetric(tp, "modeled_mips")
		})
	}
}

// BenchmarkAblationIPCModel quantifies what LinOpt's frequency-independent
// IPC assumption costs against an oracle that optimises the true IPC(f)
// (DESIGN.md ablation 2). Small thread count so the oracle's exhaustive
// search stays tractable.
func BenchmarkAblationIPCModel(b *testing.B) {
	plat, budget := frozen(b, 4)
	tip := plat.(pm.TrueIPCPlatform)
	trueTP := func(levels []int) float64 {
		sum := 0.0
		for c, l := range levels {
			sum += tip.TrueIPCAt(c, l) * plat.FreqAt(c, l) / 1e6
		}
		return sum
	}
	for _, mgr := range []pm.Manager{pm.NewLinOpt(), pm.NewOracle()} {
		mgr := mgr
		b.Run(mgr.Name(), func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				levels, err := mgr.Decide(context.Background(), plat, budget, stats.NewRNG(9))
				if err != nil {
					b.Fatal(err)
				}
				tp = trueTP(levels)
			}
			b.ReportMetric(tp, "true_mips")
		})
	}
}

// BenchmarkSolverComparison times the four optimisers on one frozen
// problem and reports the modelled throughput each achieves (DESIGN.md
// ablation 3; the quality/latency trade-off of paper Section 4.3.2).
func BenchmarkSolverComparison(b *testing.B) {
	plat, budget := frozen(b, 4)
	managers := []pm.Manager{
		pm.NewFoxton(),
		pm.NewLinOpt(),
		pm.SAnn{MaxEvals: 20000},
		pm.NewExhaustive(),
	}
	for _, mgr := range managers {
		mgr := mgr
		b.Run(mgr.Name(), func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				levels, err := mgr.Decide(context.Background(), plat, budget, stats.NewRNG(9))
				if err != nil {
					b.Fatal(err)
				}
				tp = modelTP(plat, levels)
			}
			b.ReportMetric(tp, "modeled_mips")
		})
	}
}

// BenchmarkAblationTransitionLatency quantifies what voltage-transition
// speed costs at the paper's 10 ms LinOpt cadence: the paper conservatively
// assumes Xscale-era off-chip regulators (tens to hundreds of microseconds
// per step) and cites Kim et al.'s on-chip regulators (nanoseconds) as the
// enabling technology. The reported throughput shows the gap is small at
// 10 ms — and would dominate at sub-millisecond cadences.
func BenchmarkAblationTransitionLatency(b *testing.B) {
	e := env(b)
	c, err := e.Chip(0)
	if err != nil {
		b.Fatal(err)
	}
	for _, usPerStep := range []float64{0, 100} {
		usPerStep := usPerStep
		name := "onchip-0us"
		if usPerStep > 0 {
			name = "xscale-100us"
		}
		b.Run(name, func(b *testing.B) {
			var mips float64
			for i := 0; i < b.N; i++ {
				policy, err := schedNew(b)
				if err != nil {
					b.Fatal(err)
				}
				sys, err := core.New(core.Config{
					Chip: c, CPU: e.CPU(), Scheduler: policy,
					Mode: core.ModeDVFS, Manager: pm.NewLinOpt(),
					Budget:               experiments.CostPerformance.Budget(16, 20),
					VTransitionUSPerStep: usPerStep,
					SampleIntervalMS:     2,
					Seed:                 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				apps := workload.Mix(stats.NewRNG(5), 16)
				st, err := sys.Run(apps, 50)
				if err != nil {
					b.Fatal(err)
				}
				mips = st.MIPS
			}
			b.ReportMetric(mips, "mips")
		})
	}
}

func schedNew(b *testing.B) (sched.Policy, error) {
	b.Helper()
	return sched.New(sched.NameVarFAppIPC)
}
