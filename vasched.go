package vasched

import (
	"errors"
	"fmt"

	"vasched/internal/chip"
	"vasched/internal/core"
	"vasched/internal/cpusim"
	"vasched/internal/delay"
	"vasched/internal/dynamic"
	"vasched/internal/floorplan"
	"vasched/internal/metrics"
	"vasched/internal/pm"
	"vasched/internal/power"
	"vasched/internal/sched"
	"vasched/internal/thermal"
	"vasched/internal/varmodel"
	"vasched/internal/workload"
)

// Options configures the manufactured die a Platform models.
type Options struct {
	// Cores is the number of cores on the CMP (the paper evaluates 20).
	Cores int
	// DieAreaMM2 is the die area (the paper's die is 340 mm^2).
	DieAreaMM2 float64
	// VthSigmaOverMu is the total threshold-voltage variation intensity
	// (sigma/mu); the paper sweeps 0.03-0.12 and defaults to 0.12.
	VthSigmaOverMu float64
	// SystematicFraction is the share of variation *variance* that is
	// spatially correlated (0.5 in the paper).
	SystematicFraction float64
	// Phi is the spatial-correlation range as a fraction of chip width
	// (0.5 in the paper).
	Phi float64
	// GridSize is the variation-map resolution per dimension.
	GridSize int
	// DieIndex selects which die of the statistical batch to build;
	// different indices are independent manufacturing outcomes.
	DieIndex int
	// Seed drives all randomness (die generation and runtime decisions).
	Seed int64
	// SensorNoise is the relative sigma of runtime sensor measurements
	// (0 = ideal sensors).
	SensorNoise float64
}

// DefaultOptions returns the paper's Table 4 configuration.
func DefaultOptions() Options {
	return Options{
		Cores:              20,
		DieAreaMM2:         340,
		VthSigmaOverMu:     0.12,
		SystematicFraction: 0.5,
		Phi:                0.5,
		GridSize:           256,
		DieIndex:           0,
		Seed:               1,
	}
}

// Platform is one manufactured, characterised CMP die plus the calibrated
// core performance model — everything needed to build runnable Systems.
type Platform struct {
	opt  Options
	chip *chip.Chip
	cpu  *cpusim.Model
	// The calibration the die was characterised with, kept so wearout
	// horizons can re-characterise drifted variants of the same die.
	dcfg delay.Config
	pcfg power.Model
	tcfg thermal.Config
}

// NewPlatform generates the variation maps for the selected die,
// characterises every core (maximum frequencies, V/f tables, static power)
// and calibrates the core model against the paper's Table 5 workloads.
func NewPlatform(opt Options) (*Platform, error) {
	if opt.Cores <= 0 {
		return nil, fmt.Errorf("vasched: invalid core count %d", opt.Cores)
	}
	if opt.DieAreaMM2 <= 0 {
		return nil, fmt.Errorf("vasched: invalid die area %v", opt.DieAreaMM2)
	}
	vcfg := varmodel.DefaultConfig()
	vcfg.VthSigmaOverMu = opt.VthSigmaOverMu
	vcfg.SystematicFraction = opt.SystematicFraction
	vcfg.Phi = opt.Phi
	if opt.GridSize > 0 {
		vcfg.GridRows, vcfg.GridCols = opt.GridSize, opt.GridSize
	}
	if err := vcfg.Validate(); err != nil {
		return nil, err
	}
	gen, err := varmodel.NewGenerator(vcfg)
	if err != nil {
		return nil, err
	}
	maps, err := gen.Die(opt.Seed, opt.DieIndex)
	if err != nil {
		return nil, err
	}
	fp := floorplan.NewCMP(opt.Cores, opt.DieAreaMM2)
	dcfg, pcfg, tcfg := delay.DefaultConfig(), power.DefaultModel(vcfg.Tech), thermal.DefaultConfig()
	c, err := chip.Build(maps, fp, dcfg, pcfg, tcfg)
	if err != nil {
		return nil, err
	}
	cpu, err := cpusim.New(cpusim.DefaultCoreConfig(), workload.SPEC())
	if err != nil {
		return nil, err
	}
	return &Platform{opt: opt, chip: c, cpu: cpu, dcfg: dcfg, pcfg: pcfg, tcfg: tcfg}, nil
}

// NumCores returns the platform's core count.
func (p *Platform) NumCores() int { return p.chip.NumCores() }

// CoreFmaxGHz returns a core's rated maximum frequency at the nominal
// supply, in GHz. Cores differ because of process variation.
func (p *Platform) CoreFmaxGHz(core int) float64 {
	return p.chip.FmaxNominal(core) / 1e9
}

// CoreStaticPowerW returns a core's manufacturer-measured static power at
// the maximum voltage — the VarP scheduling key.
func (p *Platform) CoreStaticPowerW(core int) float64 {
	return p.chip.StaticAtLevel[core][len(p.chip.Levels)-1]
}

// VoltageLevels returns the DVFS ladder shared by all cores.
func (p *Platform) VoltageLevels() []float64 {
	return append([]float64(nil), p.chip.Levels...)
}

// SPECApps lists the names of the built-in application pool (the paper's
// 14 SPEC CPU2000 workloads, Table 5).
func SPECApps() []string {
	pool := workload.SPEC()
	names := make([]string, len(pool))
	for i, a := range pool {
		names[i] = a.Name
	}
	return names
}

// Scheduler and manager names accepted by SystemConfig, matching the
// paper's Table 1.
const (
	SchedRandom     = sched.NameRandom
	SchedVarP       = sched.NameVarP
	SchedVarPAppP   = sched.NameVarPAppP
	SchedVarF       = sched.NameVarF
	SchedVarFAppIPC = sched.NameVarFAppIPC
	// SchedTempAware maps hot threads onto currently cool cores (this
	// repository's implementation of the paper's first future-work item).
	SchedTempAware = sched.NameTempAware

	ManagerFoxton     = pm.NameFoxton
	ManagerLinOpt     = pm.NameLinOpt
	ManagerSAnn       = pm.NameSAnn
	ManagerExhaustive = pm.NameExhaustive
)

// Mode names accepted by SystemConfig (the paper's Table 2).
const (
	ModeUniFreq  = "UniFreq"
	ModeNUniFreq = "NUniFreq"
	ModeDVFS     = "NUniFreq+DVFS"
)

// SystemConfig selects the scheduling and power-management configuration.
type SystemConfig struct {
	// Scheduler is one of the Sched* names; default Random.
	Scheduler string
	// Mode is one of the Mode* names; default NUniFreq.
	Mode string
	// Manager (Manager* names) and the budget are required in ModeDVFS.
	Manager   string
	PTargetW  float64
	PCoreMaxW float64
	// WeightedObjective makes the optimising managers maximise weighted
	// throughput instead of raw MIPS (the paper's Figure 13).
	WeightedObjective bool
	// OSIntervalMS and DVFSIntervalMS override the Figure 2 cadence
	// (defaults 100 ms and 10 ms).
	OSIntervalMS   float64
	DVFSIntervalMS float64
	// TransientThermal models per-block thermal inertia (RC time
	// stepping) instead of per-sample steady state. Needed for
	// migration-based policies such as SchedTempAware to show their
	// thermal benefit.
	TransientThermal bool
	// WarmupMS excludes an initial transient (cold caches, cold silicon)
	// from the reported statistics; the timeline still executes.
	WarmupMS float64
	// CaptureTrace records a per-sample time series in Stats.Trace.
	CaptureTrace bool
}

// System is a runnable CMP with a scheduler and (optionally) a power
// manager attached.
type System struct {
	sys *core.System
}

// NewSystem assembles a System on this platform.
func (p *Platform) NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Scheduler == "" {
		cfg.Scheduler = SchedRandom
	}
	policy, err := sched.New(cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	var mode core.Mode
	switch cfg.Mode {
	case "", ModeNUniFreq:
		mode = core.ModeNUniFreq
	case ModeUniFreq:
		mode = core.ModeUniFreq
	case ModeDVFS:
		mode = core.ModeDVFS
	default:
		return nil, fmt.Errorf("vasched: unknown mode %q", cfg.Mode)
	}
	var mgr pm.Manager
	if mode == core.ModeDVFS {
		obj := pm.ObjMIPS
		if cfg.WeightedObjective {
			obj = pm.ObjWeighted
		}
		switch cfg.Manager {
		case ManagerFoxton:
			mgr = pm.NewFoxton()
		case ManagerLinOpt, "":
			mgr = pm.LinOpt{FitPoints: 3, Objective: obj}
		case ManagerSAnn:
			mgr = pm.SAnn{Objective: obj}
		case ManagerExhaustive:
			mgr = pm.Exhaustive{Objective: obj}
		default:
			return nil, fmt.Errorf("vasched: unknown power manager %q", cfg.Manager)
		}
		if cfg.PTargetW <= 0 {
			return nil, errors.New("vasched: NUniFreq+DVFS requires PTargetW")
		}
		if cfg.PCoreMaxW <= 0 {
			// Default per-core cap: twice the per-core share of the
			// budget, as the experiments use.
			cfg.PCoreMaxW = 2 * cfg.PTargetW / float64(p.NumCores())
		}
	}
	sys, err := core.New(core.Config{
		Chip:             p.chip,
		CPU:              p.cpu,
		Scheduler:        policy,
		Mode:             mode,
		Manager:          mgr,
		Budget:           pm.Budget{PTargetW: cfg.PTargetW, PCoreMaxW: cfg.PCoreMaxW},
		OSIntervalMS:     cfg.OSIntervalMS,
		DVFSIntervalMS:   cfg.DVFSIntervalMS,
		TransientThermal: cfg.TransientThermal,
		WarmupMS:         cfg.WarmupMS,
		CaptureTrace:     cfg.CaptureTrace,
		SensorNoise:      p.opt.SensorNoise,
		Seed:             p.opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &System{sys: sys}, nil
}

// TracePoint is one captured monitor sample.
type TracePoint struct {
	TimeMS   float64
	PowerW   float64
	MIPS     float64
	MaxTempC float64
}

// Sparkline renders a series extracted from a trace as a compact unicode
// strip chart of the given width.
func Sparkline(trace []TracePoint, metric func(TracePoint) float64, width int) string {
	values := make([]float64, len(trace))
	for i, p := range trace {
		values[i] = metric(p)
	}
	return metrics.Sparkline(values, width)
}

// Stats summarises one run.
type Stats struct {
	// DurationMS is the simulated time.
	DurationMS float64
	// AvgPowerW, DynPowerW, StaticPowerW are time-averaged chip powers.
	AvgPowerW    float64
	DynPowerW    float64
	StaticPowerW float64
	// MIPS is the total throughput; WeightedThroughput counts each thread
	// relative to its stand-alone reference speed.
	MIPS               float64
	WeightedThroughput float64
	// EDSquared is proportional to energy*delay^2 at fixed work (lower is
	// better); use it to compare configurations, not as an absolute.
	EDSquared float64
	// AvgFrequencyGHz is the mean active-core frequency.
	AvgFrequencyGHz float64
	// MaxTempC is the hottest block temperature observed.
	MaxTempC float64
	// PowerDeviationPct is the mean |power - PTargetW| in percent (DVFS
	// mode only).
	PowerDeviationPct float64
	// WearoutMax is the aging rate of the fastest-aging core relative to
	// nominal operation (1.0 = nominal; see internal/wearout).
	WearoutMax float64
	// Trace holds the per-sample time series when
	// SystemConfig.CaptureTrace is set.
	Trace []TracePoint
	// InstructionsM is per-thread progress in millions of instructions.
	InstructionsM []float64
}

// DynamicConfig selects the time-stepped scenario engine
// (internal/dynamic): transient thermal integration, phase-shifting
// workloads, emergency DVFS throttling, and optional wearout horizons.
type DynamicConfig struct {
	// Scheduler is one of the Sched* names; default SchedVarFAppIPC.
	Scheduler string
	// DtMS is the thermal integration step (default 1 ms).
	DtMS float64
	// OSIntervalMS is the re-scheduling cadence (default 10 ms).
	OSIntervalMS float64
	// EmergencyC trips the thermal throttle and RecoverC releases it
	// (defaults 85 / 80).
	EmergencyC float64
	RecoverC   float64
	// MigrationPenaltyMS stalls a thread each time it moves cores.
	MigrationPenaltyMS float64
	// HorizonYears, when non-empty, re-runs the scenario on Vth-drifted
	// dies at each simulated age (must be positive and increasing).
	HorizonYears []float64
}

// DynamicStats summarises one dynamic epoch's run.
type DynamicStats struct {
	DurationMS    float64
	AvgPowerW     float64
	MIPS          float64
	MaxTempC      float64
	Emergencies   int
	ThrottledMS   float64
	Migrations    int
	PhaseSwitches int
	WearoutMax    float64
}

// DynamicEpoch is one simulated age of a dynamic scenario.
type DynamicEpoch struct {
	// Years is the simulated age (0 = fresh die); DVthMaxMV the largest
	// applied threshold drift and MinFmaxGHz the slowest core's rated
	// frequency at that age.
	Years      float64
	DVthMaxMV  float64
	MinFmaxGHz float64
	Stats      DynamicStats
}

// RunDynamic executes the time-stepped scenario on this platform's die:
// one epoch for the fresh die, plus one per HorizonYears entry on the
// correspondingly aged die. Deterministic for fixed (Options, config,
// apps, duration).
func (p *Platform) RunDynamic(cfg DynamicConfig, appNames []string, durationMS float64) ([]DynamicEpoch, error) {
	if cfg.Scheduler == "" {
		cfg.Scheduler = SchedVarFAppIPC
	}
	policy, err := sched.New(cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	apps := make([]*workload.AppProfile, len(appNames))
	for i, name := range appNames {
		a, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		apps[i] = a
	}
	run := dynamic.Config{
		Chip:               p.chip,
		CPU:                p.cpu,
		Scheduler:          policy,
		DtMS:               cfg.DtMS,
		OSIntervalMS:       cfg.OSIntervalMS,
		EmergencyC:         cfg.EmergencyC,
		RecoverC:           cfg.RecoverC,
		MigrationPenaltyMS: cfg.MigrationPenaltyMS,
		SensorNoise:        p.opt.SensorNoise,
		Seed:               p.opt.Seed,
	}
	hres, err := dynamic.RunHorizon(dynamic.HorizonConfig{
		Run:        run,
		DelayCfg:   p.dcfg,
		PowerCfg:   p.pcfg,
		ThermalCfg: p.tcfg,
		Years:      cfg.HorizonYears,
	}, apps, durationMS)
	if err != nil {
		return nil, err
	}
	out := make([]DynamicEpoch, len(hres.Epochs))
	for i, ep := range hres.Epochs {
		out[i] = DynamicEpoch{
			Years:      ep.Years,
			DVthMaxMV:  ep.DVthMaxV * 1000,
			MinFmaxGHz: ep.MinFmaxHz / 1e9,
			Stats: DynamicStats{
				DurationMS:    ep.Result.DurationMS,
				AvgPowerW:     ep.Result.AvgPowerW,
				MIPS:          ep.Result.MIPS,
				MaxTempC:      ep.Result.MaxTempC,
				Emergencies:   ep.Result.Emergencies,
				ThrottledMS:   ep.Result.ThrottledMS,
				Migrations:    ep.Result.Migrations,
				PhaseSwitches: ep.Result.PhaseSwitches,
				WearoutMax:    ep.Result.WearoutMax,
			},
		}
	}
	return out, nil
}

// Run executes the named applications (one thread per core at most) for
// durationMS of simulated time.
func (s *System) Run(appNames []string, durationMS float64) (*Stats, error) {
	apps := make([]*workload.AppProfile, len(appNames))
	for i, name := range appNames {
		a, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		apps[i] = a
	}
	st, err := s.sys.Run(apps, durationMS)
	if err != nil {
		return nil, err
	}
	out := &Stats{
		DurationMS:         st.DurationMS,
		AvgPowerW:          st.AvgPowerW,
		DynPowerW:          st.AvgDynW,
		StaticPowerW:       st.AvgStatW,
		MIPS:               st.MIPS,
		WeightedThroughput: st.WeightedTP,
		EDSquared:          st.EDSquared,
		AvgFrequencyGHz:    st.AvgActiveFreqHz / 1e9,
		MaxTempC:           st.MaxTempC,
		PowerDeviationPct:  st.PowerDeviationPct,
		WearoutMax:         st.WearoutMax,
	}
	for _, p := range st.Trace {
		out.Trace = append(out.Trace, TracePoint{
			TimeMS: p.TimeMS, PowerW: p.PowerW, MIPS: p.MIPS, MaxTempC: p.MaxTempC,
		})
	}
	for _, ins := range st.Instructions {
		out.InstructionsM = append(out.InstructionsM, ins/1e6)
	}
	return out, nil
}
