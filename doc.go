// Package vasched is a from-scratch reproduction of "Variation-Aware
// Application Scheduling and Power Management for Chip Multiprocessors"
// (Teodorescu & Torrellas, ISCA 2008).
//
// Within-die process variation makes the cores of a CMP differ in maximum
// frequency and leakage power. The paper (and this library) exploits that
// heterogeneity twice: variation-aware schedulers place threads on the
// cores that suit them (VarP, VarP&AppP, VarF, VarF&AppIPC), and
// variation-aware power managers pick per-core (voltage, frequency) points
// that maximise throughput under a chip-wide power budget — most notably
// LinOpt, which linearises the problem and solves it with the Simplex
// method in microseconds.
//
// The package is a façade over the full simulation stack in internal/:
// VARIUS-style variation maps (Gaussian random fields via circulant-
// embedding FFT sampling), alpha-power-law critical-path frequency models,
// subthreshold/gate leakage with temperature feedback, a HotSpot-style
// thermal RC network, an interval-analysis out-of-order core model
// calibrated to the paper's Table 5 workloads, a set-associative cache
// hierarchy, and the LP/annealing optimisers.
//
// # Quick start
//
//	plat, err := vasched.NewPlatform(vasched.DefaultOptions())
//	if err != nil { ... }
//	sys, err := plat.NewSystem(vasched.SystemConfig{
//		Scheduler: "VarF&AppIPC",
//		Mode:      "NUniFreq+DVFS",
//		Manager:   "LinOpt",
//		PTargetW:  75,
//	})
//	if err != nil { ... }
//	stats, err := sys.Run([]string{"bzip2", "mcf", "vortex", "swim"}, 100)
//
// Every experiment from the paper's evaluation section is runnable via
// RunExperiment (ids "table5", "fig4" ... "fig15", "sec74", "sann"), or
// from the command line with cmd/vasched.
package vasched
