package main

import (
	"strings"
	"testing"
)

// TestRenderSmallChip renders a 4-core die on a coarse grid — fast enough
// for a unit test — and checks the map geometry and per-core table.
func TestRenderSmallChip(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-cores", "4", "-grid", "64", "-die", "1", "-seed", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "die 1 (batch seed 7, sigma/mu 0.12, 4 cores)") {
		t.Fatalf("header missing:\n%s", out)
	}

	// The heat map is 40 lines of 40 ramp characters.
	lines := strings.Split(out, "\n")
	mapLines := 0
	for _, l := range lines {
		if len(l) == 40 && strings.Trim(l, " .:-=+*%#") == "" {
			mapLines++
		}
	}
	if mapLines != 40 {
		t.Fatalf("heat map has %d full-width lines, want 40:\n%s", mapLines, out)
	}

	// Exactly cores C1..C4 in the characterisation table, each with a
	// plausible Fmax and a voltage-level column.
	for _, core := range []string{"C1", "C2", "C3", "C4"} {
		if !strings.Contains(out, core+" ") {
			t.Errorf("table missing %s:\n%s", core, out)
		}
	}
	if strings.Contains(out, "C5 ") {
		t.Fatalf("table has more cores than requested:\n%s", out)
	}
	if !strings.Contains(out, "V\n") {
		t.Fatalf("min feasible level column missing:\n%s", out)
	}
}

// TestRenderDeterministic: same flags, same bytes — the die map is a pure
// function of (seed, die, sigma, cores, grid).
func TestRenderDeterministic(t *testing.T) {
	var a, b strings.Builder
	args := []string{"-cores", "4", "-grid", "64", "-die", "3", "-seed", "5"}
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two renders of the same die differ")
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-cores", "0"}, &buf); err == nil {
		t.Fatal("zero cores accepted")
	}
	if err := run([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-sigma", "9"}, &buf); err == nil {
		t.Fatal("absurd sigma accepted")
	}
}
