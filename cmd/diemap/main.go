// Command diemap renders one manufactured die: an ASCII heat map of the
// systematic Vth variation and the resulting per-core frequency and
// static-power characterisation (what the chip manufacturer would ship as
// profile data, paper Table 3).
//
// Usage:
//
//	diemap [-die 3] [-sigma 0.12] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"vasched/internal/chip"
	"vasched/internal/delay"
	"vasched/internal/floorplan"
	"vasched/internal/power"
	"vasched/internal/thermal"
	"vasched/internal/varmodel"
)

func main() {
	var (
		die   = flag.Int("die", 0, "die index within the batch")
		sigma = flag.Float64("sigma", 0.12, "Vth sigma/mu")
		seed  = flag.Int64("seed", 1, "batch seed")
	)
	flag.Parse()

	if err := run(*die, *sigma, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "diemap:", err)
		os.Exit(1)
	}
}

func run(die int, sigma float64, seed int64) error {
	cfg := varmodel.DefaultConfig()
	cfg.VthSigmaOverMu = sigma
	gen, err := varmodel.NewGenerator(cfg)
	if err != nil {
		return err
	}
	maps, err := gen.Die(seed, die)
	if err != nil {
		return err
	}
	fp := floorplan.New20CoreCMP()
	c, err := chip.Build(maps, fp, delay.DefaultConfig(), power.DefaultModel(cfg.Tech), thermal.DefaultConfig())
	if err != nil {
		return err
	}

	fmt.Printf("die %d (batch seed %d, sigma/mu %.2f)\n\n", die, seed, sigma)
	fmt.Println("systematic Vth map (. low / # high => fast&leaky .. slow&frugal):")
	const cells = 40
	ramp := []byte(" .:-=+*%#")
	_, sysSigma, _ := cfg.SigmaVth()
	for r := 0; r < cells; r++ {
		for col := 0; col < cells; col++ {
			v := maps.VthSys.AtPoint((float64(col)+0.5)/cells, (float64(r)+0.5)/cells)
			// Map +-2.5 sigma onto the ramp.
			t := (v/sysSigma + 2.5) / 5
			if t < 0 {
				t = 0
			}
			if t > 0.999 {
				t = 0.999
			}
			fmt.Printf("%c", ramp[int(t*float64(len(ramp)))])
		}
		fmt.Println()
	}

	fmt.Println("\nper-core characterisation (rated at worst-case temperature):")
	fmt.Printf("%-6s %10s %14s %20s\n", "core", "Fmax(GHz)", "static@1V (W)", "min feasible level")
	for core := 0; core < c.NumCores(); core++ {
		fmt.Printf("C%-5d %10.2f %14.2f %17.2fV\n",
			core+1,
			c.FmaxNominal(core)/1e9,
			c.StaticAtLevel[core][len(c.Levels)-1],
			c.Levels[c.MinLevelIndex(core)])
	}
	return nil
}
