// Command diemap renders one manufactured die: an ASCII heat map of the
// systematic Vth variation and the resulting per-core frequency and
// static-power characterisation (what the chip manufacturer would ship as
// profile data, paper Table 3).
//
// Usage:
//
//	diemap [-die 3] [-sigma 0.12] [-seed 1] [-cores 20] [-grid 256]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vasched/internal/chip"
	"vasched/internal/delay"
	"vasched/internal/floorplan"
	"vasched/internal/power"
	"vasched/internal/thermal"
	"vasched/internal/varmodel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "diemap:", err)
		os.Exit(1)
	}
}

// run is the testable CLI core: parse args, characterise one die, render.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("diemap", flag.ContinueOnError)
	var (
		die   = fs.Int("die", 0, "die index within the batch")
		sigma = fs.Float64("sigma", 0.12, "Vth sigma/mu")
		seed  = fs.Int64("seed", 1, "batch seed")
		cores = fs.Int("cores", 20, "number of cores on the die (area scales with the paper's 20-core/340mm2 chip)")
		grid  = fs.Int("grid", 0, "variation-map resolution (grid x grid cells; 0 = package default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return render(stdout, *die, *sigma, *seed, *cores, *grid)
}

func render(w io.Writer, die int, sigma float64, seed int64, cores, grid int) error {
	if cores <= 0 {
		return fmt.Errorf("need at least one core, got %d", cores)
	}
	cfg := varmodel.DefaultConfig()
	cfg.VthSigmaOverMu = sigma
	if grid > 0 {
		cfg.GridRows, cfg.GridCols = grid, grid
	}
	gen, err := varmodel.NewGenerator(cfg)
	if err != nil {
		return err
	}
	maps, err := gen.Die(seed, die)
	if err != nil {
		return err
	}
	// Scale die area linearly with core count from the paper's 20-core,
	// 340 mm2 chip so per-core geometry stays constant.
	fp := floorplan.NewCMP(cores, 340*float64(cores)/20)
	c, err := chip.Build(maps, fp, delay.DefaultConfig(), power.DefaultModel(cfg.Tech), thermal.DefaultConfig())
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "die %d (batch seed %d, sigma/mu %.2f, %d cores)\n\n", die, seed, sigma, cores)
	fmt.Fprintln(w, "systematic Vth map (. low / # high => fast&leaky .. slow&frugal):")
	const cells = 40
	ramp := []byte(" .:-=+*%#")
	_, sysSigma, _ := cfg.SigmaVth()
	for r := 0; r < cells; r++ {
		for col := 0; col < cells; col++ {
			v := maps.VthSys.AtPoint((float64(col)+0.5)/cells, (float64(r)+0.5)/cells)
			// Map +-2.5 sigma onto the ramp.
			t := (v/sysSigma + 2.5) / 5
			if t < 0 {
				t = 0
			}
			if t > 0.999 {
				t = 0.999
			}
			fmt.Fprintf(w, "%c", ramp[int(t*float64(len(ramp)))])
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "\nper-core characterisation (rated at worst-case temperature):")
	fmt.Fprintf(w, "%-6s %10s %14s %20s\n", "core", "Fmax(GHz)", "static@1V (W)", "min feasible level")
	for core := 0; core < c.NumCores(); core++ {
		fmt.Fprintf(w, "C%-5d %10.2f %14.2f %17.2fV\n",
			core+1,
			c.FmaxNominal(core)/1e9,
			c.StaticAtLevel[core][len(c.Levels)-1],
			c.Levels[c.MinLevelIndex(core)])
	}
	return nil
}
