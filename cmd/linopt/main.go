// Command linopt demonstrates the power managers head to head on one
// frozen scheduling instant: it builds a die, places a workload with
// VarF&AppIPC, and prints the (V, f) assignment, modelled throughput, and
// solve time of Foxton*, LinOpt, and SAnn side by side for a given power
// budget.
//
// Usage:
//
//	linopt [-threads 20] [-budget 75] [-die 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"vasched/internal/chip"
	"vasched/internal/core"
	"vasched/internal/cpusim"
	"vasched/internal/delay"
	"vasched/internal/floorplan"
	"vasched/internal/pm"
	"vasched/internal/power"
	"vasched/internal/stats"
	"vasched/internal/thermal"
	"vasched/internal/varmodel"
	"vasched/internal/workload"
)

func main() {
	var (
		threads = flag.Int("threads", 20, "number of threads (<= 20)")
		budget  = flag.Float64("budget", 75, "chip power target in watts")
		die     = flag.Int("die", 0, "die index")
	)
	flag.Parse()
	if err := run(*threads, *budget, *die); err != nil {
		fmt.Fprintln(os.Stderr, "linopt:", err)
		os.Exit(1)
	}
}

func run(threads int, budgetW float64, die int) error {
	cfg := varmodel.DefaultConfig()
	gen, err := varmodel.NewGenerator(cfg)
	if err != nil {
		return err
	}
	maps, err := gen.Die(1, die)
	if err != nil {
		return err
	}
	fp := floorplan.New20CoreCMP()
	c, err := chip.Build(maps, fp, delay.DefaultConfig(), power.DefaultModel(cfg.Tech), thermal.DefaultConfig())
	if err != nil {
		return err
	}
	cpu, err := cpusim.New(cpusim.DefaultCoreConfig(), workload.SPEC())
	if err != nil {
		return err
	}
	apps := workload.Mix(stats.NewRNG(3), threads)
	plat, err := core.FrozenSnapshot(c, cpu, apps, 7)
	if err != nil {
		return err
	}
	b := pm.Budget{PTargetW: budgetW, PCoreMaxW: 2 * budgetW / float64(threads)}
	fmt.Printf("%d threads, Ptarget %.0f W, Pcoremax %.1f W, uncore %.1f W\n\n",
		threads, b.PTargetW, b.PCoreMaxW, plat.UncorePowerW())

	if sens, err := pm.BudgetSensitivity(plat, b, pm.ObjMIPS); err == nil {
		fmt.Printf("budget shadow price: one extra watt buys ~%.0f MIPS at this point\n\n", sens)
	}

	managers := []pm.Manager{pm.NewFoxton(), pm.NewLinOpt(), pm.SAnn{MaxEvals: 50000}}
	for _, m := range managers {
		start := time.Now()
		levels, err := m.Decide(context.Background(), plat, b, stats.NewRNG(9))
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		var tp, pw float64
		pw = plat.UncorePowerW()
		for cix, l := range levels {
			tp += plat.IPC(cix) * plat.FreqAt(cix, l) / 1e6
			pw += plat.PowerAt(cix, l)
		}
		fmt.Printf("%-10s  TP=%8.0f MIPS  P=%6.1f W  solve=%-12v\n", m.Name(), tp, pw, elapsed.Round(time.Microsecond))
		fmt.Print("  V per core:")
		for cix, l := range levels {
			fmt.Printf(" %.2f", plat.VoltageAt(l))
			_ = cix
		}
		fmt.Println()
	}
	return nil
}
