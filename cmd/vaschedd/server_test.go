package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(context.Background(), 2, 2, nil)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) jobView {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func getJob(t *testing.T, ts *httptest.Server, id int) map[string]any {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get job %d status = %d", id, resp.StatusCode)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func waitStatus(t *testing.T, ts *httptest.Server, id int, want string, timeout time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		m := getJob(t, ts, id)
		switch m["status"] {
		case want:
			return m
		case "failed":
			t.Fatalf("job %d failed: %v", id, m["error"])
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %d did not reach %q within %v", id, want, timeout)
	return nil
}

// TestConcurrentJobsEndToEnd is the acceptance flow: two experiment jobs
// submitted together run concurrently, and both polls resolve to typed
// JSON results.
func TestConcurrentJobsEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)

	j1 := postJob(t, ts, `{"experiment":"table5","scale":"quick"}`)
	j2 := postJob(t, ts, `{"experiment":"fig6","scale":"quick"}`)
	if j1.ID == j2.ID {
		t.Fatal("duplicate job ids")
	}

	m1 := waitStatus(t, ts, j1.ID, "done", 5*time.Minute)
	m2 := waitStatus(t, ts, j2.ID, "done", 5*time.Minute)

	res1, ok := m1["result"].(map[string]any)
	if !ok || res1["Rows"] == nil {
		t.Fatalf("table5 result not typed JSON: %v", m1["result"])
	}
	if res2, ok := m2["result"].(map[string]any); !ok || res2["MaxFCurve"] == nil {
		t.Fatalf("fig6 result not typed JSON: %v", m2["result"])
	}
	if s, _ := m1["rendered"].(string); !strings.Contains(s, "Table 5") {
		t.Fatalf("rendered report missing: %q", s)
	}

	// The job list shows both, newest first.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || int(list[0]["id"].(float64)) != j2.ID || int(list[1]["id"].(float64)) != j1.ID {
		t.Fatalf("job list = %+v", list)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{
		`{"experiment":"fig99"}`,
		`{"experiment":"fig4","scale":"huge"}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d", body, resp.StatusCode)
		}
	}
}

func TestHealthzAndExperiments(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range m["experiments"] {
		if id == "fig4" {
			found = true
		}
	}
	if !found {
		t.Fatalf("experiments list missing fig4: %v", m)
	}
}

// TestCancelStopsInFlightWork cancels a running paper-scale job and
// checks the job reaches the cancelled state promptly — the context
// threads through farm into the die loops, so a 200-die characterisation
// is abandoned between dies rather than run to completion.
func TestCancelStopsInFlightWork(t *testing.T) {
	_, ts := newTestServer(t)
	// Default scale: 200 dies, far more work than the cancel window.
	j := postJob(t, ts, `{"experiment":"fig4","scale":"default"}`)
	waitStatus(t, ts, j.ID, "running", time.Minute)
	time.Sleep(200 * time.Millisecond) // let some die work start

	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, j.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	m := waitStatus(t, ts, j.ID, "cancelled", time.Minute)
	if elapsed := time.Since(start); elapsed > 45*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if m["result"] != nil {
		t.Fatal("cancelled job must not carry a result")
	}
}

// TestGracefulShutdownCancelsJobs exercises the signal path: cancelling
// the base context (what SIGTERM does) aborts queued and running jobs.
func TestGracefulShutdownCancelsJobs(t *testing.T) {
	ctx, stop := context.WithCancel(context.Background())
	srv := newServer(ctx, 1, 2, nil) // max-jobs 1: the second job queues
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	j1 := postJob(t, ts, `{"experiment":"fig4","scale":"default"}`)
	j2 := postJob(t, ts, `{"experiment":"fig7","scale":"default"}`)
	waitStatus(t, ts, j1.ID, "running", time.Minute)

	stop()
	srv.cancelAll()
	waitCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	srv.wait(waitCtx)

	m1 := getJob(t, ts, j1.ID)
	m2 := getJob(t, ts, j2.ID)
	if m1["status"] != "cancelled" {
		t.Fatalf("running job status = %v", m1["status"])
	}
	if m2["status"] != "cancelled" {
		t.Fatalf("queued job status = %v", m2["status"])
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	j := postJob(t, ts, `{"experiment":"table5","scale":"quick"}`)
	waitStatus(t, ts, j.ID, "done", 5*time.Minute)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE vaschedd_jobs_submitted_total counter",
		"vaschedd_jobs_submitted_total 1",
		`vaschedd_jobs_total{status="done"} 1`,
		"# TYPE vaschedd_job_seconds histogram",
		`vaschedd_job_seconds_count{experiment="table5"} 1`,
		`vaschedd_job_seconds_bucket{experiment="table5",le="+Inf"} 1`,
		"vaschedd_die_cache_hits_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}
