package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vasched/internal/jobstore"
	"vasched/internal/metrics"
)

func startServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	if cfg.MaxJobs == 0 {
		cfg.MaxJobs = 2
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ts
}

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	return startServer(t, serverConfig{})
}

// postJobAs submits a job for a tenant and returns the decoded view
// plus the HTTP status code.
func postJobAs(t *testing.T, ts *httptest.Server, tenantName, body string) (jobView, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenantName != "" {
		req.Header.Set("X-Tenant", tenantName)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return v, resp
}

func postJob(t *testing.T, ts *httptest.Server, body string) jobView {
	t.Helper()
	v, resp := postJobAs(t, ts, "", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	return v
}

func getJob(t *testing.T, ts *httptest.Server, id uint64) map[string]any {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get job %d status = %d", id, resp.StatusCode)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func cancelJob(t *testing.T, ts *httptest.Server, id uint64) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func waitStatus(t *testing.T, ts *httptest.Server, id uint64, want string, timeout time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		m := getJob(t, ts, id)
		switch m["status"] {
		case want:
			return m
		case "failed":
			t.Fatalf("job %d failed: %v", id, m["error"])
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %d did not reach %q within %v", id, want, timeout)
	return nil
}

// TestConcurrentJobsEndToEnd is the acceptance flow: two experiment jobs
// submitted together run concurrently, and both polls resolve to typed
// JSON results.
func TestConcurrentJobsEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)

	j1 := postJob(t, ts, `{"experiment":"table5","scale":"quick"}`)
	j2 := postJob(t, ts, `{"experiment":"fig6","scale":"quick"}`)
	if j1.ID == j2.ID {
		t.Fatal("duplicate job ids")
	}
	if j1.Tenant != defaultTenant || j1.Lane != "interactive" {
		t.Fatalf("default tenant/lane = %q/%q", j1.Tenant, j1.Lane)
	}

	m1 := waitStatus(t, ts, j1.ID, "done", 5*time.Minute)
	m2 := waitStatus(t, ts, j2.ID, "done", 5*time.Minute)

	res1, ok := m1["result"].(map[string]any)
	if !ok || res1["Rows"] == nil {
		t.Fatalf("table5 result not typed JSON: %v", m1["result"])
	}
	if res2, ok := m2["result"].(map[string]any); !ok || res2["MaxFCurve"] == nil {
		t.Fatalf("fig6 result not typed JSON: %v", m2["result"])
	}
	if s, _ := m1["rendered"].(string); !strings.Contains(s, "Table 5") {
		t.Fatalf("rendered report missing: %q", s)
	}

	// The job list shows both, newest first.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || uint64(list[0]["id"].(float64)) != j2.ID || uint64(list[1]["id"].(float64)) != j1.ID {
		t.Fatalf("job list = %+v", list)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{
		`{"experiment":"fig99"}`,
		`{"experiment":"fig4","scale":"huge"}`,
		`{"experiment":"fig4","lane":"express"}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d", body, resp.StatusCode)
		}
	}
}

// TestAdaptiveJobEndToEnd submits an ext-adapt job with an adaptive
// config, waits for it to finish, and checks (a) the config round-trips
// through the job view and the WAL-persisted Params, (b) the typed
// result carries the sampling summary, and (c) the run's convergence
// shows up as the adapt gauges on /metrics.
func TestAdaptiveJobEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t)

	j := postJob(t, ts, `{"experiment":"ext-adapt","scale":"quick","adaptive":{"metric":"power-ratio","rel_ci":0.05}}`)
	if !strings.Contains(string(j.Params), `"metric":"power-ratio"`) {
		t.Fatalf("submit view params = %s", j.Params)
	}
	if stored, ok := srv.store.Get(j.ID); !ok || !strings.Contains(string(stored.Params), `"rel_ci":0.05`) {
		t.Fatalf("persisted params = %s", stored.Params)
	}
	m := waitStatus(t, ts, j.ID, "done", time.Minute)
	result := m["result"].(map[string]any)
	if result["Metric"] != "power-ratio" {
		t.Fatalf("result metric = %v", result["Metric"])
	}
	sampling := result["Sampling"].(map[string]any)
	if ev := sampling["evaluated"].(float64); ev <= 0 {
		t.Fatalf("evaluated = %v", ev)
	}
	if conv, exh := sampling["converged"].(bool), sampling["exhausted"].(bool); !conv && !exh {
		t.Fatalf("run neither converged nor exhausted: %v", sampling)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`vaschedd_adapt_rounds{experiment="ext-adapt"}`,
		`vaschedd_adapt_dies_evaluated{experiment="ext-adapt"}`,
		`vaschedd_adapt_half_width{experiment="ext-adapt"}`,
		`vaschedd_adapt_target_half_width{experiment="ext-adapt"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	// The dies-evaluated gauge must agree with the job's own result.
	dies := srv.reg.Gauge(`vaschedd_adapt_dies_evaluated{experiment="ext-adapt"}`).Value()
	if dies != int64(sampling["evaluated"].(float64)) {
		t.Fatalf("gauge dies = %d, result evaluated = %v", dies, sampling["evaluated"])
	}
}

// TestAdaptiveSubmitValidation pins the adaptive-specific 400s: wrong
// experiment, unknown metric.
func TestAdaptiveSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{
		`{"experiment":"fig4","adaptive":{}}`,
		`{"experiment":"ext-adapt","adaptive":{"metric":"nope"}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d", body, resp.StatusCode)
		}
	}
}

func TestHealthzAndExperiments(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" || hz["coordinator"] != srv.coordID || hz["epoch"].(float64) != 1 {
		t.Fatalf("healthz body = %v", hz)
	}
	resp, err = http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range m["experiments"] {
		if id == "fig4" {
			found = true
		}
	}
	if !found {
		t.Fatalf("experiments list missing fig4: %v", m)
	}
}

// TestCancelStopsInFlightWork cancels a running paper-scale job and
// checks the job reaches the cancelled state promptly — the context
// threads through farm into the die loops, so a 200-die characterisation
// is abandoned between dies rather than run to completion.
func TestCancelStopsInFlightWork(t *testing.T) {
	_, ts := newTestServer(t)
	// Default scale: 200 dies, far more work than the cancel window.
	j := postJob(t, ts, `{"experiment":"fig4","scale":"default"}`)
	waitStatus(t, ts, j.ID, "running", time.Minute)
	time.Sleep(200 * time.Millisecond) // let some die work start

	start := time.Now()
	cancelJob(t, ts, j.ID)
	m := waitStatus(t, ts, j.ID, "cancelled", time.Minute)
	if elapsed := time.Since(start); elapsed > 45*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if m["result"] != nil {
		t.Fatal("cancelled job must not carry a result")
	}
}

// TestCancelQueuedJob cancels a job that never got a slot: it completes
// as cancelled durably and the tenant's quota charge is released.
func TestCancelQueuedJob(t *testing.T) {
	srv, ts := startServer(t, serverConfig{MaxJobs: 1})
	hog := postJob(t, ts, `{"experiment":"fig4","scale":"default"}`)
	waitStatus(t, ts, hog.ID, "running", time.Minute)
	j := postJob(t, ts, `{"experiment":"fig6","scale":"quick"}`)

	cancelJob(t, ts, j.ID)
	m := waitStatus(t, ts, j.ID, "cancelled", time.Minute)
	if m["started"] != nil {
		t.Fatal("queued job was started after cancel")
	}
	if open := srv.adm.Open(defaultTenant); open != 1 { // only the hog remains charged
		t.Fatalf("open jobs after cancel = %d", open)
	}
	cancelJob(t, ts, hog.ID)
	waitStatus(t, ts, hog.ID, "cancelled", time.Minute)
}

// TestLanePriorityOrder pins the weighted dequeue: with one slot busy,
// jobs submitted batch-first are claimed control > interactive > batch
// once the slot frees.
func TestLanePriorityOrder(t *testing.T) {
	srv, ts := startServer(t, serverConfig{MaxJobs: 1})
	hog := postJob(t, ts, `{"experiment":"fig4","scale":"default"}`)
	waitStatus(t, ts, hog.ID, "running", time.Minute)

	batch := postJob(t, ts, `{"experiment":"fig4","scale":"quick","lane":"batch"}`)
	inter := postJob(t, ts, `{"experiment":"fig6","scale":"quick","lane":"interactive"}`)
	ctrl := postJob(t, ts, `{"experiment":"table5","scale":"quick","lane":"control"}`)

	cancelJob(t, ts, hog.ID)
	for _, id := range []uint64{ctrl.ID, inter.ID, batch.ID} {
		waitStatus(t, ts, id, "done", 5*time.Minute)
	}

	get := func(id uint64) jobstore.Job {
		j, ok := srv.store.Get(id)
		if !ok {
			t.Fatalf("job %d missing", id)
		}
		return j
	}
	c, i, b := get(ctrl.ID), get(inter.ID), get(batch.ID)
	if !c.Started.Before(i.Started) || !i.Started.Before(b.Started) {
		t.Fatalf("claim order wrong: control %v, interactive %v, batch %v",
			c.Started, i.Started, b.Started)
	}
}

// TestTenantQuota429 pins quota backpressure: the third open job of a
// two-job tenant is refused with 429 + Retry-After, other tenants are
// unaffected, and a released charge re-admits.
func TestTenantQuota429(t *testing.T) {
	_, ts := startServer(t, serverConfig{MaxJobs: 1, TenantQuota: 2})
	hog, resp := postJobAs(t, ts, "hog", `{"experiment":"fig4","scale":"default"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("hog submit = %d", resp.StatusCode)
	}
	waitStatus(t, ts, hog.ID, "running", time.Minute)

	for i := 0; i < 2; i++ {
		if _, resp := postJobAs(t, ts, "acme", `{"experiment":"fig6","scale":"quick"}`); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("acme submit %d = %d", i, resp.StatusCode)
		}
	}
	_, resp = postJobAs(t, ts, "acme", `{"experiment":"fig6","scale":"quick"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// The quota is per tenant: another tenant still gets in.
	if _, resp := postJobAs(t, ts, "other", `{"experiment":"fig6","scale":"quick"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other-tenant submit = %d", resp.StatusCode)
	}
	cancelJob(t, ts, hog.ID)
}

// TestLaneFull429 pins lane-capacity backpressure for a distinct
// tenant, proving the two limits are independent.
func TestLaneFull429(t *testing.T) {
	_, ts := startServer(t, serverConfig{MaxJobs: 1, LaneCapacity: 1})
	hog := postJob(t, ts, `{"experiment":"fig4","scale":"default"}`)
	waitStatus(t, ts, hog.ID, "running", time.Minute)

	if _, resp := postJobAs(t, ts, "a", `{"experiment":"fig6","scale":"quick","lane":"batch"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first batch submit = %d", resp.StatusCode)
	}
	_, resp := postJobAs(t, ts, "b", `{"experiment":"fig6","scale":"quick","lane":"batch"}`)
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("full-lane submit = %d (Retry-After %q)", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// The interactive lane is independent of the full batch lane.
	if _, resp := postJobAs(t, ts, "b", `{"experiment":"fig6","scale":"quick"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("interactive submit = %d", resp.StatusCode)
	}
	cancelJob(t, ts, hog.ID)
}

// TestListPaginationHTTP pins ?limit= and ?after= semantics and the
// documented descending-ID order.
func TestListPaginationHTTP(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 5; i++ {
		postJob(t, ts, `{"experiment":"fig6","scale":"quick"}`)
	}
	page := func(url string) []uint64 {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", url, resp.StatusCode)
		}
		var list []jobView
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		ids := make([]uint64, len(list))
		for i, v := range list {
			ids[i] = v.ID
		}
		return ids
	}
	eq := func(got, want []uint64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("ids = %v, want %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("ids = %v, want %v", got, want)
			}
		}
	}
	eq(page("/v1/jobs"), []uint64{5, 4, 3, 2, 1})
	eq(page("/v1/jobs?limit=2"), []uint64{5, 4})
	eq(page("/v1/jobs?limit=2&after=4"), []uint64{3, 2})
	eq(page("/v1/jobs?after=2"), []uint64{1})
	eq(page("/v1/jobs?after=1"), []uint64{})
	for _, bad := range []string{"/v1/jobs?limit=0", "/v1/jobs?limit=x", "/v1/jobs?after=-1"} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s = %d", bad, resp.StatusCode)
		}
	}
}

// TestGracefulShutdownDrains pins the drain semantics: a running job
// that outlives the drain window is requeued (not cancelled), a queued
// job stays queued, submits during the drain get 503, and the log ends
// with the clean-shutdown record.
func TestGracefulShutdownDrains(t *testing.T) {
	dir := t.TempDir()
	srv, err := newServer(serverConfig{MaxJobs: 1, Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	running := postJob(t, ts, `{"experiment":"fig4","scale":"default"}`)
	queued := postJob(t, ts, `{"experiment":"fig7","scale":"default"}`)
	waitStatus(t, ts, running.ID, "running", time.Minute)

	shutCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	go func() {
		srv.Shutdown(shutCtx)
		close(done)
	}()
	// Submits during the drain are refused.
	deadline := time.Now().Add(time.Minute)
	for {
		_, resp := postJobAs(t, ts, "", `{"experiment":"fig6","scale":"quick"}`)
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain submit = %d, want 503", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case <-done:
	case <-time.After(time.Minute):
		t.Fatal("Shutdown did not return")
	}

	// The next lifetime replays a cleanly shut-down log with both jobs
	// back in the queue — the running one carries a requeue mark.
	re, err := jobstore.Open(jobstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if st := re.Stats(); st.CrashRecovered {
		t.Fatalf("clean shutdown replayed as crash: %+v", st)
	}
	r1, _ := re.Get(running.ID)
	if r1.Status != jobstore.StatusQueued || r1.Requeues != 1 {
		t.Fatalf("drained running job = %+v", r1)
	}
	r2, _ := re.Get(queued.ID)
	if r2.Status != jobstore.StatusQueued || r2.Requeues != 0 {
		t.Fatalf("drained queued job = %+v", r2)
	}
}

// TestTwoCoordinatorsFencing is the server-level lease/epoch
// acceptance test: two coordinators share one store, the newer epoch
// takes over the older one's running job, and every write from the
// superseded coordinator is fenced — it reports 503 and its stale
// completion never lands.
func TestTwoCoordinatorsFencing(t *testing.T) {
	st, err := jobstore.Open(jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	srvA, err := newServer(serverConfig{MaxJobs: 1, Workers: 2, Store: st, CoordID: "pod-a"})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.routes())
	defer tsA.Close()

	j := postJob(t, tsA, `{"experiment":"fig4","scale":"default"}`)
	waitStatus(t, tsA, j.ID, "running", time.Minute)

	// pod-b attaches to the same log: it acquires the next epoch and
	// takes over the job pod-a is still executing.
	srvB, err := newServer(serverConfig{MaxJobs: 1, Workers: 2, Store: st, CoordID: "pod-b"})
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(srvB.routes())
	defer tsB.Close()
	if srvB.epoch != srvA.epoch+1 {
		t.Fatalf("epochs = %d, %d", srvA.epoch, srvB.epoch)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		if g, ok := st.Get(j.ID); ok && g.Epoch == srvB.epoch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pod-b never took over the lease")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// pod-a's attempt to finish the job (here: a user cancel driving
	// its completion path) is fenced, flipping pod-a to 503.
	cancelJob(t, tsA, j.ID)
	for {
		resp, err := http.Get(tsA.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("superseded pod-a still reports healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, resp := postJobAs(t, tsA, "", `{"experiment":"fig6","scale":"quick"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fenced submit = %d", resp.StatusCode)
	}

	// pod-b owns the job now: it can cancel (complete) it, and the
	// record shows pod-b's lease — pod-a's outcome never landed.
	cancelJob(t, tsB, j.ID)
	waitStatus(t, tsB, j.ID, "cancelled", time.Minute)
	g, _ := st.Get(j.ID)
	if g.Coord != "pod-b" || g.Epoch != srvB.epoch {
		t.Fatalf("final lease = %q/%d, want pod-b/%d", g.Coord, g.Epoch, srvB.epoch)
	}

	// pod-b keeps serving: a fresh job runs to completion.
	j2 := postJob(t, tsB, `{"experiment":"fig6","scale":"quick"}`)
	waitStatus(t, tsB, j2.ID, "done", 5*time.Minute)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	srvA.Shutdown(ctx)
	srvB.Shutdown(ctx)
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	j := postJob(t, ts, `{"experiment":"table5","scale":"quick"}`)
	waitStatus(t, ts, j.ID, "done", 5*time.Minute)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE vaschedd_jobs_submitted_total counter",
		"vaschedd_jobs_submitted_total 1",
		`vaschedd_admission_total{decision="admitted"} 1`,
		`vaschedd_jobs_total{status="done"} 1`,
		"# TYPE vaschedd_epoch gauge",
		"vaschedd_epoch 1",
		`vaschedd_lane_depth{lane="interactive"} 0`,
		"# TYPE vaschedd_job_seconds histogram",
		`vaschedd_job_seconds_count{experiment="table5"} 1`,
		`vaschedd_job_seconds_bucket{experiment="table5",le="+Inf"} 1`,
		"vaschedd_die_cache_hits_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	validatePrometheus(t, body)
}

// TestListPaginationRejectsUnknownCursor is the regression test for the
// silent-restart bug: an ?after= cursor that is not an existing job ID
// used to fall through to "no cursor" behaviour and serve the newest
// page again. It must be a 400, as must the never-valid cursor 0, while
// real cursors keep paginating exactly.
func TestListPaginationRejectsUnknownCursor(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 3; i++ {
		postJob(t, ts, `{"experiment":"fig6","scale":"quick"}`)
	}
	for _, bad := range []string{
		"/v1/jobs?after=0",           // 0 is never a job id
		"/v1/jobs?after=999",         // beyond every assigned id
		"/v1/jobs?after=4",           // one past the newest
		"/v1/jobs?after=07x",         // trailing garbage
		"/v1/jobs?after=%20",         // whitespace
		"/v1/jobs?after=1&after=999", // first value wins; 1 is valid — see below
	} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		want := http.StatusBadRequest
		if bad == "/v1/jobs?after=1&after=999" {
			want = http.StatusOK // Query().Get takes the first value
		}
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", bad, resp.StatusCode, want)
		}
	}
	// A real cursor still pages: after=2 serves exactly job 1.
	resp, err := http.Get(ts.URL + "/v1/jobs?after=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid cursor = %d", resp.StatusCode)
	}
	var list []jobView
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != 1 {
		t.Fatalf("after=2 page = %+v", list)
	}
}

// TestLaneDequeueCounters: contested dispatch increments the per-lane
// dequeue counters that back the fairness observability.
func TestLaneDequeueCounters(t *testing.T) {
	_, ts := newTestServer(t)
	j1 := postJob(t, ts, `{"experiment":"table5","scale":"quick","lane":"control"}`)
	j2 := postJob(t, ts, `{"experiment":"table5","scale":"quick","lane":"batch"}`)
	waitStatus(t, ts, j1.ID, "done", time.Minute)
	waitStatus(t, ts, j2.ID, "done", time.Minute)
	_, body := get(t, ts.URL+"/metrics")
	sc, err := metrics.ParseExposition(body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	series := sc.Series("vaschedd_lane_dequeues_total")
	if series[`lane="control"`] < 1 || series[`lane="batch"`] < 1 {
		t.Fatalf("lane dequeue counters = %v", series)
	}
}
