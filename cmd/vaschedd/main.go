// Command vaschedd serves the paper's experiments as a long-running HTTP
// service on top of the internal/farm execution engine: clients submit
// experiment jobs, poll their status, and fetch typed JSON results, while
// the farm's shared die cache amortises die characterisation across jobs.
//
// Usage:
//
//	vaschedd [-addr :8080] [-max-jobs N] [-parallel N]
//
// API:
//
//	POST   /v1/jobs         {"experiment":"fig4","scale":"quick"}  → 202 + job
//	GET    /v1/jobs         → all jobs, newest first
//	GET    /v1/jobs/{id}    → job status + typed result when done
//	DELETE /v1/jobs/{id}    → cancel a queued/running job
//	GET    /v1/experiments  → runnable experiment ids
//	GET    /healthz         → liveness
//	GET    /metrics         → Prometheus-style counters & latency histograms
//
// Quick start:
//
//	vaschedd &
//	curl -s -X POST localhost:8080/v1/jobs -d '{"experiment":"fig4","scale":"quick"}'
//	curl -s localhost:8080/v1/jobs/1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		maxJobs = flag.Int("max-jobs", 2, "experiment jobs allowed to run concurrently (others queue)")
		par     = flag.Int("parallel", runtime.GOMAXPROCS(0), "die-farm worker goroutines per job")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := newServer(ctx, *maxJobs, *par)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "vaschedd: listening on %s (max-jobs %d, parallel %d)\n", *addr, *maxJobs, *par)

	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting requests, cancel in-flight
		// jobs (their contexts thread through farm into the die loops),
		// then wait briefly for both to drain.
		fmt.Fprintln(os.Stderr, "vaschedd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.cancelAll()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "vaschedd: shutdown:", err)
		}
		srv.wait(shutCtx)
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "vaschedd:", err)
			os.Exit(1)
		}
	}
}
