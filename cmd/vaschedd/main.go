// Command vaschedd serves the paper's experiments as a long-running HTTP
// service on top of the internal/farm execution engine: clients submit
// experiment jobs, poll their status, and fetch typed JSON results, while
// the farm's shared die cache amortises die characterisation across jobs.
//
// Usage:
//
//	vaschedd [-addr :8080] [-max-jobs N] [-parallel N] [-workers URL,URL] [-debug-addr :6060]
//	vaschedd -worker [-addr :8081] [-parallel N]
//
// The two modes form a sharded cluster: coordinators split every
// kernel-based die loop into shards and dispatch them to the workers
// named by -workers, retrying, hedging, and finally degrading back to
// local execution when workers fail. Results are byte-identical at any
// worker count, including zero (see internal/cluster and DESIGN.md §8).
//
// Coordinator API:
//
//	POST   /v1/jobs         {"experiment":"fig4","scale":"quick"}  → 202 + job
//	GET    /v1/jobs         → all jobs, newest first
//	GET    /v1/jobs/{id}    → job status + typed result when done
//	DELETE /v1/jobs/{id}    → cancel a queued/running job
//	GET    /v1/experiments  → runnable experiment ids
//	GET    /v1/cluster      → attached worker registry + health
//	GET    /healthz         → liveness
//	GET    /metrics         → Prometheus-style counters & latency histograms
//
// Worker API (served by -worker):
//
//	POST   /v1/shard        → binary shard request/response (internal/cluster codec)
//	GET    /healthz         → liveness (probed by coordinators)
//	GET    /metrics         → worker-side shard counters
//
// Quick start:
//
//	vaschedd &
//	curl -s -X POST localhost:8080/v1/jobs -d '{"experiment":"fig4","scale":"quick"}'
//	curl -s localhost:8080/v1/jobs/1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"vasched/internal/cluster"
	"vasched/internal/experiments"
	"vasched/internal/metrics"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		maxJobs = flag.Int("max-jobs", 2, "experiment jobs allowed to run concurrently (others queue)")
		par     = flag.Int("parallel", runtime.GOMAXPROCS(0), "die-farm worker goroutines per job (per shard in -worker mode)")
		worker  = flag.Bool("worker", false, "run as a cluster worker: serve shard requests instead of the job API")
		workers = flag.String("workers", "", "comma-separated worker base URLs; shards kernel-based die loops across them")
		debug   = flag.String("debug-addr", "", "serve /debug/pprof and /debug/trace (Chrome trace JSON) on this extra address; empty disables")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *worker {
		handler := cluster.Handler(experiments.NewExecutor(*par), metrics.NewRegistry())
		httpSrv := &http.Server{Addr: *addr, Handler: handler}
		errCh := make(chan error, 1)
		go func() { errCh <- httpSrv.ListenAndServe() }()
		fmt.Fprintf(os.Stderr, "vaschedd: worker listening on %s (parallel %d)\n", *addr, *par)
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr, "vaschedd: worker shutting down")
			shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := httpSrv.Shutdown(shutCtx); err != nil {
				fmt.Fprintln(os.Stderr, "vaschedd: shutdown:", err)
			}
		case err := <-errCh:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "vaschedd:", err)
				os.Exit(1)
			}
		}
		return
	}

	srv := newServer(ctx, *maxJobs, *par, splitURLs(*workers))
	if srv.clust != nil {
		go srv.probeLoop(ctx, 15*time.Second)
		fmt.Fprintf(os.Stderr, "vaschedd: clustering across %d workers\n", srv.clust.NumWorkers())
	}
	if *debug != "" {
		dbgSrv := &http.Server{Addr: *debug, Handler: srv.debugMux()}
		defer dbgSrv.Close()
		go func() {
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "vaschedd: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "vaschedd: debug endpoints on %s\n", *debug)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "vaschedd: listening on %s (max-jobs %d, parallel %d)\n", *addr, *maxJobs, *par)

	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting requests, cancel in-flight
		// jobs (their contexts thread through farm into the die loops),
		// then wait briefly for both to drain.
		fmt.Fprintln(os.Stderr, "vaschedd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.cancelAll()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "vaschedd: shutdown:", err)
		}
		srv.wait(shutCtx)
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "vaschedd:", err)
			os.Exit(1)
		}
	}
}

// splitURLs parses the -workers flag: comma-separated base URLs, empty
// entries dropped, trailing slashes trimmed.
func splitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}
