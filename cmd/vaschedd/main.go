// Command vaschedd serves the paper's experiments as a durable,
// multi-tenant job platform on top of the internal/farm execution
// engine: clients submit experiment jobs, poll their status, and fetch
// typed JSON results, while the farm's shared die cache amortises die
// characterisation across jobs.
//
// Usage:
//
//	vaschedd [-addr :8080] [-data-dir DIR] [-coord-id ID] [-max-jobs N]
//	         [-parallel N] [-workers URL,URL] [-tenant-quota N] [-lane-cap N]
//	         [-drain 30s] [-fsync] [-debug-addr :6060]
//	vaschedd -worker [-addr :8081] [-parallel N]
//
// With -data-dir every job mutation is appended to a checksummed
// write-ahead log before it is applied, and boot replays the log: a
// coordinator can be SIGKILLed mid-run, restarted, and every submitted
// job either still carries its completed result or runs again —
// byte-identically, because experiments are deterministic. Job IDs are
// monotonic across restarts. Each boot acquires a new epoch; a stale
// coordinator sharing the same log has all of its writes fenced and
// reports 503 until it is retired (see internal/jobstore and DESIGN.md
// §10). Without -data-dir the store runs in memory.
//
// Submissions are admission-controlled per tenant (the X-Tenant
// request header, default "default"): each tenant gets -tenant-quota
// open jobs, each priority lane ("lane" in the submit body: control,
// interactive, or batch) holds -lane-cap queued jobs, and a rejected
// submit gets 429 with a Retry-After hint. Claims drain the lanes by
// smooth weighted round-robin (16/4/1), so control work wins contended
// slots but batch work never starves.
//
// The two modes form a sharded cluster: coordinators split every
// kernel-based die loop into shards and dispatch them to the workers
// named by -workers, retrying, hedging, and finally degrading back to
// local execution when workers fail. Results are byte-identical at any
// worker count, including zero (see internal/cluster and DESIGN.md §8).
//
// Coordinator API:
//
//	POST   /v1/jobs         {"experiment":"fig4","scale":"quick","lane":"batch"}  → 202 + job
//	                        (X-Tenant header selects the tenant; 429 + Retry-After on quota)
//	GET    /v1/jobs         → jobs, newest first; ?limit= caps the page (default 100),
//	                        ?after=ID returns jobs with IDs strictly below the cursor
//	                        (400 when the cursor is malformed or not an existing job id)
//	GET    /v1/jobs/{id}    → job status + typed result when done
//	DELETE /v1/jobs/{id}    → cancel a queued/running job
//	GET    /v1/experiments  → runnable experiment ids
//	GET    /v1/cluster      → attached worker registry + health
//	GET    /healthz         → liveness (503 once fenced by a newer epoch)
//	GET    /metrics         → Prometheus-style counters, gauges & latency histograms
//
// Worker API (served by -worker):
//
//	POST   /v1/shard        → binary shard request/response (internal/cluster codec)
//	GET    /healthz         → liveness (probed by coordinators)
//	GET    /metrics         → worker-side shard counters
//
// Quick start:
//
//	vaschedd -data-dir /var/lib/vaschedd &
//	curl -s -X POST -H 'X-Tenant: acme' localhost:8080/v1/jobs \
//	     -d '{"experiment":"fig4","scale":"quick","lane":"interactive"}'
//	curl -s localhost:8080/v1/jobs/1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"vasched/internal/cluster"
	"vasched/internal/experiments"
	"vasched/internal/metrics"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dataDir = flag.String("data-dir", "", "write-ahead log directory; empty runs the job store in memory")
		coordID = flag.String("coord-id", "", "coordinator identity recorded in claim leases (default vaschedd-<pid>)")
		fsync   = flag.Bool("fsync", false, "fsync the WAL after every append (survives machine crashes, not just process kills)")
		maxJobs = flag.Int("max-jobs", 2, "experiment jobs allowed to run concurrently (others queue)")
		par     = flag.Int("parallel", runtime.GOMAXPROCS(0), "die-farm worker goroutines per job (per shard in -worker mode)")
		quota   = flag.Int("tenant-quota", 16, "open (queued+running) jobs allowed per tenant")
		laneCap = flag.Int("lane-cap", 64, "queued jobs allowed per priority lane")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown window for in-flight jobs before they are requeued")
		worker  = flag.Bool("worker", false, "run as a cluster worker: serve shard requests instead of the job API")
		workers = flag.String("workers", "", "comma-separated worker base URLs; shards kernel-based die loops across them")
		debug   = flag.String("debug-addr", "", "serve /debug/pprof and /debug/trace (Chrome trace JSON) on this extra address; empty disables")
		dieDir  = flag.String("die-cache-dir", "", "directory for the on-disk die blob store; a restarted service (or worker) re-characterises dies from checksummed blobs instead of re-sampling")
	)
	flag.Parse()

	if *dieDir != "" {
		experiments.SetSharedDieCacheDir(*dieDir)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *worker {
		handler := cluster.Handler(experiments.NewExecutor(*par), metrics.NewRegistry())
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vaschedd:", err)
			os.Exit(1)
		}
		httpSrv := &http.Server{Handler: handler}
		errCh := make(chan error, 1)
		go func() { errCh <- httpSrv.Serve(ln) }()
		// Log the bound (not requested) address so -addr :0 is usable by
		// harnesses that spawn worker fleets on ephemeral ports.
		fmt.Fprintf(os.Stderr, "vaschedd: worker listening on %s (parallel %d)\n", ln.Addr(), *par)
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr, "vaschedd: worker shutting down")
			shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := httpSrv.Shutdown(shutCtx); err != nil {
				fmt.Fprintln(os.Stderr, "vaschedd: shutdown:", err)
			}
		case err := <-errCh:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "vaschedd:", err)
				os.Exit(1)
			}
		}
		return
	}

	srv, err := newServer(serverConfig{
		MaxJobs:      *maxJobs,
		Workers:      *par,
		WorkerURLs:   splitURLs(*workers),
		CoordID:      *coordID,
		DataDir:      *dataDir,
		Fsync:        *fsync,
		TenantQuota:  *quota,
		LaneCapacity: *laneCap,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vaschedd:", err)
		os.Exit(1)
	}
	if st := srv.store.Stats(); st.Records > 0 {
		fmt.Fprintf(os.Stderr, "vaschedd: replayed %d records from %d segment(s), requeued %d job(s), crash_recovered=%v\n",
			st.Records, st.Segments, st.Requeued, st.CrashRecovered)
	}
	if srv.clust != nil {
		go srv.probeLoop(ctx, 15*time.Second)
		fmt.Fprintf(os.Stderr, "vaschedd: clustering across %d workers\n", srv.clust.NumWorkers())
	}
	if *debug != "" {
		dbgSrv := &http.Server{Addr: *debug, Handler: srv.debugMux()}
		defer dbgSrv.Close()
		go func() {
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "vaschedd: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "vaschedd: debug endpoints on %s\n", *debug)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vaschedd:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.routes()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "vaschedd: listening on %s (epoch %d, max-jobs %d, parallel %d)\n",
		ln.Addr(), srv.epoch, *maxJobs, *par)

	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting requests, give in-flight
		// jobs the drain window to finish (their results are persisted),
		// requeue whatever remains, and seal the log with the
		// clean-shutdown record.
		fmt.Fprintln(os.Stderr, "vaschedd: draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "vaschedd: shutdown:", err)
		}
		srv.Shutdown(shutCtx)
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "vaschedd:", err)
			os.Exit(1)
		}
	}
}

// splitURLs parses the -workers flag: comma-separated base URLs, empty
// entries dropped, trailing slashes trimmed.
func splitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}
