package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vasched"
	"vasched/internal/adapt"
	"vasched/internal/cluster"
	"vasched/internal/experiments"
	"vasched/internal/jobstore"
	"vasched/internal/metrics"
	"vasched/internal/tenant"
	"vasched/internal/trace"
)

// defaultListLimit bounds GET /v1/jobs pages when ?limit= is absent.
const defaultListLimit = 100

// defaultTenant is the tenant charged when a request carries no
// X-Tenant header.
const defaultTenant = "default"

// Cancellation causes, distinguished in finish: a user cancel persists
// a cancelled completion, a drain cancel leaves the claim open so the
// next lifetime's replay re-queues the job.
var (
	errUserCancel  = errors.New("cancelled by client")
	errDrainCancel = errors.New("requeued by graceful shutdown")
)

// serverConfig assembles a coordinator. Zero fields take documented
// defaults.
type serverConfig struct {
	// MaxJobs bounds concurrently running experiments (default 1).
	MaxJobs int
	// Workers is the per-job die-farm goroutine count.
	Workers int
	// WorkerURLs, when non-empty, shards kernel die loops across the
	// named cluster workers.
	WorkerURLs []string
	// CoordID names this coordinator in claim leases and the epoch
	// record (default "vaschedd-<pid>").
	CoordID string
	// DataDir is the WAL directory; empty runs the store in memory
	// (no durability). Ignored when Store is set.
	DataDir string
	// Fsync syncs the WAL after every append.
	Fsync bool
	// Store, when set, is a pre-opened job store the server attaches
	// to instead of opening DataDir — how tests model two coordinator
	// pods sharing one log. The caller keeps ownership: Shutdown will
	// not close it.
	Store *jobstore.Store
	// TenantQuota caps each tenant's open (queued+running) jobs.
	TenantQuota int
	// LaneCapacity caps each priority lane's queue depth.
	LaneCapacity int
	// RetryAfter is the backoff hint attached to 429 responses.
	RetryAfter time.Duration
}

// jobView is the JSON shape served for a job.
type jobView struct {
	ID         uint64          `json:"id"`
	Tenant     string          `json:"tenant"`
	Lane       string          `json:"lane"`
	Experiment string          `json:"experiment"`
	Scale      string          `json:"scale"`
	Workers    int             `json:"workers"`
	Status     string          `json:"status"`
	Params     json.RawMessage `json:"params,omitempty"`
	Error      string          `json:"error,omitempty"`
	Requeues   int             `json:"requeues,omitempty"`
	Submitted  time.Time       `json:"submitted"`
	Started    *time.Time      `json:"started,omitempty"`
	Finished   *time.Time      `json:"finished,omitempty"`
	ElapsedSec float64         `json:"elapsed_seconds,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	Rendered   string          `json:"rendered,omitempty"`
}

// server is the coordinator: admission-controlled submits feed the
// durable job store, a dispatcher drains the lane queues into the
// concurrency semaphore, and every store write is fenced by the epoch
// acquired at boot.
type server struct {
	coordID string
	epoch   uint64
	workers int
	store   *jobstore.Store
	// ownsStore: Shutdown closes the store only if this server opened
	// it (a shared store belongs to the caller).
	ownsStore bool
	adm       *tenant.Controller
	sem       chan struct{}
	reg       *metrics.Registry
	// tracer ring-buffers spans from every job (farm fan-out, cluster
	// dispatch, pm decisions); /debug/trace serves them as Chrome JSON.
	tracer *trace.Tracer
	// clust, when non-nil, shards every kernel-based die loop across the
	// configured worker processes (-workers). Its counters land in reg, so
	// /metrics shows coordinator and cluster health side by side.
	clust *cluster.Client

	// runCtx parents every job context and the dispatcher; runCancel
	// fires only at the end of Shutdown, after the drain window.
	runCtx    context.Context
	runCancel context.CancelFunc
	// wake nudges the dispatcher after a submit or a freed slot.
	wake chan struct{}
	// fenced flips once a store write returns ErrStaleEpoch: another
	// coordinator superseded this one. The server stops claiming and
	// reports 503 on /healthz and submits.
	fenced atomic.Bool

	// admitMu serialises quota check → WAL append → enqueue so
	// concurrent submits cannot oversubscribe a tenant between the
	// check and the charge.
	admitMu sync.Mutex

	mu sync.Mutex
	// cancels holds the cancel funcs of running jobs, keyed by job ID.
	cancels  map[uint64]context.CancelCauseFunc
	draining bool
	wg       sync.WaitGroup // running job goroutines
	dispWG   sync.WaitGroup // the dispatcher
}

func newServer(cfg serverConfig) (*server, error) {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1
	}
	if cfg.CoordID == "" {
		cfg.CoordID = fmt.Sprintf("vaschedd-%d", os.Getpid())
	}
	s := &server{
		coordID: cfg.CoordID,
		workers: cfg.Workers,
		sem:     make(chan struct{}, cfg.MaxJobs),
		reg:     metrics.NewRegistry(),
		tracer:  trace.New(trace.DefaultCapacity),
		wake:    make(chan struct{}, 1),
		cancels: make(map[uint64]context.CancelCauseFunc),
		adm: tenant.NewController(tenant.Config{
			MaxOpenPerTenant: cfg.TenantQuota,
			LaneCapacity:     cfg.LaneCapacity,
			RetryAfter:       cfg.RetryAfter,
		}),
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	if len(cfg.WorkerURLs) > 0 {
		s.clust = cluster.NewClient(cfg.WorkerURLs, cluster.Options{Metrics: s.reg})
	}

	s.store = cfg.Store
	if s.store == nil {
		_, span := trace.Start(trace.WithTracer(context.Background(), s.tracer), "jobstore.replay",
			trace.String("dir", cfg.DataDir))
		st, err := jobstore.Open(jobstore.Options{Dir: cfg.DataDir, Fsync: cfg.Fsync})
		span.End()
		if err != nil {
			s.runCancel()
			return nil, fmt.Errorf("open job store: %w", err)
		}
		s.store = st
		s.ownsStore = true
	}
	epoch, err := s.store.AcquireEpoch(s.coordID)
	if err != nil {
		if s.ownsStore {
			s.store.Close()
		}
		s.runCancel()
		return nil, fmt.Errorf("acquire epoch: %w", err)
	}
	s.epoch = epoch

	// Replay evidence on /metrics: how the previous lifetime ended and
	// how much work came back.
	st := s.store.Stats()
	if st.CrashRecovered {
		s.reg.Gauge("vaschedd_crash_recovered").Set(1)
	}
	s.reg.Gauge("vaschedd_replay_records").Set(int64(st.Records))
	s.reg.Gauge("vaschedd_replay_requeued").Set(int64(st.Requeued))
	s.reg.Gauge("vaschedd_epoch").Set(int64(epoch))

	// Re-enqueue surviving work: everything queued, plus running jobs
	// whose lease this epoch just fenced. Requeue bypasses quota —
	// these jobs were admitted in a previous lifetime.
	for _, j := range s.store.Reclaimable(epoch) {
		s.adm.Requeue(tenant.Item{ID: j.ID, Tenant: j.Tenant, Lane: j.Lane})
	}
	s.updateLaneGauges()

	s.dispWG.Add(1)
	go s.dispatch()
	s.kick()
	return s, nil
}

// kick nudges the dispatcher without blocking.
func (s *server) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// fence marks this coordinator superseded. No further claims are made;
// /healthz and submits answer 503 so a load balancer drains it.
func (s *server) fence() {
	if s.fenced.CompareAndSwap(false, true) {
		s.reg.Counter("vaschedd_fenced_total").Inc()
	}
}

// dispatch is the scheduling loop: one slot from the semaphore, one
// item from the weighted lane queues, one claim in the store, one run
// goroutine. It exits when the server shuts down or is fenced.
func (s *server) dispatch() {
	defer s.dispWG.Done()
	for {
		select {
		case <-s.runCtx.Done():
			return
		case <-s.wake:
		}
		for {
			if s.fenced.Load() || s.stopping() {
				return
			}
			select {
			case s.sem <- struct{}{}:
			case <-s.runCtx.Done():
				return
			}
			// Re-check after a potentially long wait for a slot: a drain
			// that started meanwhile must not claim fresh work.
			if s.fenced.Load() || s.stopping() {
				<-s.sem
				return
			}
			it, ok := s.adm.Dequeue()
			if !ok {
				<-s.sem
				break // all lanes empty: back to waiting for a kick
			}
			// Delivered fairness: which lane won this contested slot. The
			// counter ratio across lanes is what the load-test harness
			// checks against the configured 16/4/1 weights.
			s.reg.Counter(fmt.Sprintf("vaschedd_lane_dequeues_total{lane=%q}", it.Lane)).Inc()
			s.updateLaneGauges()
			j, err := s.store.Claim(it.ID, s.coordID, s.epoch)
			if err != nil {
				<-s.sem
				if errors.Is(err, jobstore.ErrStaleEpoch) {
					s.fence()
					return
				}
				// The job left the queued state between dequeue and
				// claim (cancelled): drop it and release its charge.
				s.adm.Release(it.Tenant)
				continue
			}
			jobCtx, cancel := context.WithCancelCause(s.runCtx)
			s.mu.Lock()
			if s.draining {
				// Shutdown won the race: undo the claim in memory (the
				// open claim in the log re-queues it on replay).
				s.mu.Unlock()
				cancel(errDrainCancel)
				s.store.Requeue(j.ID)
				<-s.sem
				return
			}
			s.cancels[j.ID] = cancel
			s.wg.Add(1)
			s.mu.Unlock()
			go s.run(jobCtx, cancel, j)
		}
	}
}

func (s *server) stopping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *server) updateLaneGauges() {
	d := s.adm.Depths()
	for l := 0; l < tenant.NumLanes; l++ {
		s.reg.Gauge(fmt.Sprintf("vaschedd_lane_depth{lane=%q}", tenant.Lane(l))).Set(int64(d[l]))
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

type submitRequest struct {
	Experiment string `json:"experiment"`
	Scale      string `json:"scale,omitempty"`
	Workers    int    `json:"workers,omitempty"`
	Lane       string `json:"lane,omitempty"`
	// Adaptive selects adaptive stratified sampling for ext-adapt (the
	// only experiment that honours it; other ids are rejected). The
	// config is persisted with the job, so a crash-replayed run re-uses
	// the exact options, and the frozen round schedule makes the re-run
	// byte-identical.
	Adaptive *experiments.AdaptiveConfig `json:"adaptive,omitempty"`
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.fenced.Load() {
		httpError(w, http.StatusServiceUnavailable, "coordinator superseded by a newer epoch")
		return
	}
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	known := false
	for _, id := range vasched.ExperimentIDs() {
		if id == req.Experiment {
			known = true
			break
		}
	}
	if !known {
		httpError(w, http.StatusBadRequest, "unknown experiment %q (see /v1/experiments)", req.Experiment)
		return
	}
	scale := vasched.Scale(req.Scale)
	if scale == "" {
		scale = vasched.ScaleQuick
	}
	if scale != vasched.ScaleQuick && scale != vasched.ScaleDefault {
		httpError(w, http.StatusBadRequest, "unknown scale %q (quick or default)", req.Scale)
		return
	}
	lane, err := tenant.ParseLane(req.Lane)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var params []byte
	if req.Adaptive != nil {
		if req.Experiment != "ext-adapt" {
			httpError(w, http.StatusBadRequest, "adaptive sampling is only supported by ext-adapt, not %q", req.Experiment)
			return
		}
		if m := req.Adaptive.Metric; m != "" {
			known := false
			for _, id := range experiments.AdaptiveMetrics() {
				if id == m {
					known = true
					break
				}
			}
			if !known {
				httpError(w, http.StatusBadRequest, "unknown adaptive metric %q (one of %v)", m, experiments.AdaptiveMetrics())
				return
			}
		}
		if params, err = json.Marshal(req.Adaptive); err != nil {
			httpError(w, http.StatusBadRequest, "adaptive config: %v", err)
			return
		}
	}
	ten := r.Header.Get("X-Tenant")
	if ten == "" {
		ten = defaultTenant
	}
	if len(ten) > 128 {
		httpError(w, http.StatusBadRequest, "X-Tenant longer than 128 bytes")
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.workers
	}

	// Admission and the durable submit are one serialised step, so two
	// racing submits cannot both pass the quota check and oversubscribe
	// the tenant between check and charge.
	s.admitMu.Lock()
	if s.stopping() {
		s.admitMu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "coordinator is shutting down")
		return
	}
	if err := s.adm.Check(ten, lane); err != nil {
		s.admitMu.Unlock()
		s.writeBackpressure(w, err)
		return
	}
	_, span := trace.Start(trace.WithTracer(r.Context(), s.tracer), "job.submit",
		trace.String("tenant", ten), trace.String("lane", lane.String()),
		trace.String("experiment", req.Experiment))
	j, err := s.store.Submit(jobstore.Spec{
		Tenant:     ten,
		Lane:       lane,
		Experiment: req.Experiment,
		Scale:      string(scale),
		Workers:    workers,
		Params:     params,
	})
	span.End()
	if err != nil {
		s.admitMu.Unlock()
		httpError(w, http.StatusInternalServerError, "persist job: %v", err)
		return
	}
	s.adm.Requeue(tenant.Item{ID: j.ID, Tenant: ten, Lane: lane})
	s.admitMu.Unlock()

	s.updateLaneGauges()
	s.reg.Counter("vaschedd_jobs_submitted_total").Inc()
	s.reg.Counter(`vaschedd_admission_total{decision="admitted"}`).Inc()
	s.kick()

	v, _ := s.view(j.ID)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(v)
}

// writeBackpressure maps admission errors to 429 + Retry-After.
func (s *server) writeBackpressure(w http.ResponseWriter, err error) {
	var qe *tenant.QuotaError
	var lf *tenant.LaneFullError
	switch {
	case errors.As(err, &qe):
		s.reg.Counter(`vaschedd_admission_total{decision="quota"}`).Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(qe.RetryAfter/time.Second)))
		httpError(w, http.StatusTooManyRequests, "%v", err)
	case errors.As(err, &lf):
		s.reg.Counter(`vaschedd_admission_total{decision="lane_full"}`).Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(lf.RetryAfter/time.Second)))
		httpError(w, http.StatusTooManyRequests, "%v", err)
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
	}
}

// run executes one claimed job with the job's context threaded through
// the farm engine, then records the outcome.
func (s *server) run(ctx context.Context, cancel context.CancelCauseFunc, j jobstore.Job) {
	defer s.wg.Done()
	defer func() {
		<-s.sem
		s.kick()
	}()
	defer cancel(nil)

	opts := []vasched.RunOption{
		vasched.WithWorkers(j.Workers),
		vasched.WithContext(trace.WithTracer(ctx, s.tracer)),
		vasched.WithDecideHist(s.reg.Histogram(
			fmt.Sprintf("vaschedd_decide_seconds{experiment=%q}", j.Experiment))),
	}
	if s.clust != nil {
		opts = append(opts, vasched.WithCluster(s.clust))
	}
	if len(j.Params) > 0 {
		var cfg experiments.AdaptiveConfig
		if err := json.Unmarshal(j.Params, &cfg); err != nil {
			s.finish(j, nil, fmt.Errorf("decode job params: %w", err), context.Cause(ctx))
			return
		}
		cfg.Progress = s.adaptProgress(j.Experiment)
		opts = append(opts, vasched.WithAdaptive(cfg))
	}
	res, err := vasched.RunExperimentResult(j.Experiment, vasched.Scale(j.Scale), opts...)
	s.finish(j, res, err, context.Cause(ctx))
}

// adaptProgress returns a per-round callback that mirrors an adaptive
// run's convergence onto /metrics: rounds completed, dies evaluated, and
// the current vs target CI half-width. Gauges are labeled by experiment
// (bounded cardinality), so they show the most recent adaptive run —
// enough for operators and load tests to watch convergence live.
func (s *server) adaptProgress(experiment string) func(adapt.Status) {
	rounds := s.reg.Gauge(fmt.Sprintf("vaschedd_adapt_rounds{experiment=%q}", experiment))
	dies := s.reg.Gauge(fmt.Sprintf("vaschedd_adapt_dies_evaluated{experiment=%q}", experiment))
	half := s.reg.FloatGauge(fmt.Sprintf("vaschedd_adapt_half_width{experiment=%q}", experiment))
	target := s.reg.FloatGauge(fmt.Sprintf("vaschedd_adapt_target_half_width{experiment=%q}", experiment))
	return func(st adapt.Status) {
		rounds.Set(int64(st.Round))
		dies.Set(int64(st.Evaluated))
		half.Set(st.HalfWidth)
		target.Set(st.Target)
	}
}

// finish persists a job outcome and its metrics. A drain cancellation
// is the exception: the claim is left open in the log (replay will
// re-queue the job) and only the in-memory view is reset.
func (s *server) finish(j jobstore.Job, res vasched.ExperimentResult, err, cause error) {
	s.mu.Lock()
	delete(s.cancels, j.ID)
	s.mu.Unlock()

	var status jobstore.Status
	var errMsg, rendered string
	var resultJSON []byte
	switch {
	case err == nil:
		status = jobstore.StatusDone
		rendered = res.Render()
		var mErr error
		resultJSON, mErr = json.Marshal(res)
		if mErr != nil {
			status, errMsg = jobstore.StatusFailed, fmt.Sprintf("marshal result: %v", mErr)
			rendered, resultJSON = "", nil
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if errors.Is(cause, errDrainCancel) {
			s.store.Requeue(j.ID)
			s.reg.Counter("vaschedd_drain_requeued_total").Inc()
			return
		}
		status = jobstore.StatusCancelled
		errMsg = err.Error()
	default:
		status = jobstore.StatusFailed
		errMsg = err.Error()
	}

	cerr := s.store.Complete(j.ID, s.coordID, s.epoch, status, errMsg, rendered, resultJSON)
	if cerr != nil {
		if errors.Is(cerr, jobstore.ErrStaleEpoch) {
			// A newer coordinator owns the log now; our result is void.
			s.fence()
			return
		}
		fmt.Fprintf(os.Stderr, "vaschedd: persist completion of job %d: %v\n", j.ID, cerr)
		return
	}
	s.adm.Release(j.Tenant)

	s.reg.Counter(fmt.Sprintf("vaschedd_jobs_total{status=%q}", status)).Inc()
	if status == jobstore.StatusDone {
		if g, ok := s.store.Get(j.ID); ok && !g.Started.IsZero() {
			s.reg.Histogram(fmt.Sprintf("vaschedd_job_seconds{experiment=%q}", j.Experiment)).
				Observe(g.Finished.Sub(g.Started).Seconds())
		}
	}
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	limit := defaultListLimit
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "bad limit %q (positive integer)", q)
			return
		}
		limit = n
	}
	var after uint64
	if q := r.URL.Query().Get("after"); q != "" {
		n, err := strconv.ParseUint(q, 10, 64)
		if err != nil || n == 0 {
			httpError(w, http.StatusBadRequest, "bad after cursor %q (job id)", q)
			return
		}
		// An unknown cursor would silently restart the page from the
		// newest job — a paginating client would re-see (or miss) pages
		// without noticing. Jobs are never deleted, so a cursor that is
		// not a known job ID is a client bug: reject it.
		if _, ok := s.store.Get(n); !ok {
			httpError(w, http.StatusBadRequest, "unknown after cursor %d (not an existing job id)", n)
			return
		}
		after = n
	}
	jobs := s.store.List(after, limit)
	views := make([]jobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, viewOf(j))
	}
	writeJSON(w, views)
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return
	}
	v, ok := s.view(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	writeJSON(w, v)
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return
	}
	j, ok := s.store.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	switch j.Status {
	case jobstore.StatusQueued:
		if err := s.store.Cancel(id, s.coordID, s.epoch); err != nil {
			if errors.Is(err, jobstore.ErrStaleEpoch) {
				s.fence()
				httpError(w, http.StatusServiceUnavailable, "coordinator superseded by a newer epoch")
				return
			}
			// Claimed or completed in the meantime: fall through to the
			// running-job path via a fresh snapshot.
			if cur, ok := s.store.Get(id); ok && cur.Status == jobstore.StatusRunning {
				s.cancelRunning(id)
			}
		} else {
			// If the dispatcher already dequeued the item, its failed
			// claim releases the charge; otherwise Remove does.
			s.adm.Remove(id)
			s.updateLaneGauges()
			s.reg.Counter(fmt.Sprintf("vaschedd_jobs_total{status=%q}", jobstore.StatusCancelled)).Inc()
		}
	case jobstore.StatusRunning:
		s.cancelRunning(id)
	default:
		// Terminal: cancel is a no-op, return the state as-is.
	}
	v, _ := s.view(id)
	writeJSON(w, v)
}

// cancelRunning fires a running job's cancel cause; the job reaches
// the cancelled state through its own finish.
func (s *server) cancelRunning(id uint64) {
	s.mu.Lock()
	cancel := s.cancels[id]
	s.mu.Unlock()
	if cancel != nil {
		cancel(errUserCancel)
	}
}

func (s *server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"experiments": vasched.ExperimentIDs()})
}

func (s *server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.clust == nil {
		writeJSON(w, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, map[string]any{"enabled": true, "workers": s.clust.Workers()})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.fenced.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{
			"status": "fenced", "coordinator": s.coordID, "epoch": s.epoch,
		})
		return
	}
	writeJSON(w, map[string]any{"status": "ok", "coordinator": s.coordID, "epoch": s.epoch})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := experiments.SharedDieCacheStatsFull()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE vaschedd_die_cache_hits_total counter\nvaschedd_die_cache_hits_total %d\n", st.Hits)
	fmt.Fprintf(w, "# TYPE vaschedd_die_cache_misses_total counter\nvaschedd_die_cache_misses_total %d\n", st.Misses)
	fmt.Fprintf(w, "# TYPE vaschedd_die_cache_disk_hits_total counter\nvaschedd_die_cache_disk_hits_total %d\n", st.DiskHits)
	fmt.Fprintf(w, "# TYPE vaschedd_die_cache_corrupt_blobs_total counter\nvaschedd_die_cache_corrupt_blobs_total %d\n", st.CorruptBlobs)
	fmt.Fprintf(w, "# TYPE vaschedd_die_cache_disk_read_bytes_total counter\nvaschedd_die_cache_disk_read_bytes_total %d\n", st.BytesRead)
	fmt.Fprintf(w, "# TYPE vaschedd_die_cache_disk_written_bytes_total counter\nvaschedd_die_cache_disk_written_bytes_total %d\n", st.BytesWritten)
	fmt.Fprint(w, s.reg.Render())
}

// debugMux is the operator-only debug surface (-debug-addr): pprof
// profiles plus the collected spans as Chrome trace_event JSON. It is a
// separate listener so profiling and trace dumps never ride the job API's
// address (or its exposure).
func (s *server) debugMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/trace", s.handleDebugTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleDebugTrace dumps the span ring buffer in Chrome trace_event
// format — load it in chrome://tracing or Perfetto.
func (s *server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	trace.WriteChrome(w, s.tracer.Snapshot())
}

// probeLoop health-checks the cluster workers until ctx is cancelled, so
// a worker that dies between jobs is already marked unavailable when the
// next job dispatches.
func (s *server) probeLoop(ctx context.Context, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		s.clust.ProbeAll(ctx)
		select {
		case <-tick.C:
		case <-ctx.Done():
			return
		}
	}
}

func viewOf(j jobstore.Job) jobView {
	v := jobView{
		ID:         j.ID,
		Tenant:     j.Tenant,
		Lane:       j.Lane.String(),
		Experiment: j.Experiment,
		Scale:      j.Scale,
		Workers:    j.Workers,
		Status:     string(j.Status),
		Params:     json.RawMessage(j.Params),
		Error:      j.Error,
		Requeues:   j.Requeues,
		Submitted:  j.Submitted,
		Rendered:   j.Rendered,
		Result:     json.RawMessage(j.Result),
	}
	if !j.Started.IsZero() {
		t := j.Started
		v.Started = &t
		end := j.Finished
		if end.IsZero() {
			end = time.Now()
		}
		v.ElapsedSec = end.Sub(t).Seconds()
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		v.Finished = &t
	}
	return v
}

// view snapshots a job for serialisation.
func (s *server) view(id uint64) (jobView, bool) {
	j, ok := s.store.Get(id)
	if !ok {
		return jobView{}, false
	}
	return viewOf(j), true
}

// Shutdown drains the coordinator: new submits are refused, in-flight
// jobs get until ctx expires to finish (then they are cancelled and
// re-queued for the next lifetime), and the log is sealed with a
// clean-shutdown record so the next replay knows this was not a crash.
func (s *server) Shutdown(ctx context.Context) {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.kick() // unblock the dispatcher so it observes draining and exits

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Drain window over: cancel stragglers with the drain cause so
		// finish re-queues instead of persisting a cancellation.
		s.mu.Lock()
		cancels := make([]context.CancelCauseFunc, 0, len(s.cancels))
		for _, c := range s.cancels {
			cancels = append(cancels, c)
		}
		s.mu.Unlock()
		for _, c := range cancels {
			c(errDrainCancel)
		}
		<-done
	}
	s.dispWG.Wait()
	s.runCancel()

	if !s.fenced.Load() {
		if err := s.store.MarkShutdown(s.coordID, s.epoch); err != nil && !errors.Is(err, jobstore.ErrStaleEpoch) {
			fmt.Fprintf(os.Stderr, "vaschedd: mark shutdown: %v\n", err)
		}
	}
	if s.ownsStore {
		if err := s.store.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "vaschedd: close store: %v\n", err)
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are already out; nothing useful left to do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
