package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"vasched"
	"vasched/internal/cluster"
	"vasched/internal/experiments"
	"vasched/internal/metrics"
	"vasched/internal/trace"
)

// jobStatus is a job's lifecycle state.
type jobStatus string

const (
	statusQueued    jobStatus = "queued"
	statusRunning   jobStatus = "running"
	statusDone      jobStatus = "done"
	statusFailed    jobStatus = "failed"
	statusCancelled jobStatus = "cancelled"
)

// job is one submitted experiment run. Mutable fields are guarded by the
// owning server's mu.
type job struct {
	ID         int
	Experiment string
	Scale      vasched.Scale
	Workers    int
	Status     jobStatus
	Error      string
	Submitted  time.Time
	Started    time.Time
	Finished   time.Time
	Result     vasched.ExperimentResult
	Rendered   string
	cancel     context.CancelFunc
}

// jobView is the JSON shape served for a job.
type jobView struct {
	ID         int                      `json:"id"`
	Experiment string                   `json:"experiment"`
	Scale      string                   `json:"scale"`
	Workers    int                      `json:"workers"`
	Status     string                   `json:"status"`
	Error      string                   `json:"error,omitempty"`
	Submitted  time.Time                `json:"submitted"`
	Started    *time.Time               `json:"started,omitempty"`
	Finished   *time.Time               `json:"finished,omitempty"`
	ElapsedSec float64                  `json:"elapsed_seconds,omitempty"`
	Result     vasched.ExperimentResult `json:"result,omitempty"`
	Rendered   string                   `json:"rendered,omitempty"`
}

// server is the job manager: it bounds experiment concurrency with a
// semaphore, threads per-job cancellation contexts through the farm
// engine, and keeps job history in memory.
type server struct {
	baseCtx context.Context
	workers int
	sem     chan struct{}
	reg     *metrics.Registry
	// tracer ring-buffers spans from every job (farm fan-out, cluster
	// dispatch, pm decisions); /debug/trace serves them as Chrome JSON.
	tracer *trace.Tracer
	// clust, when non-nil, shards every kernel-based die loop across the
	// configured worker processes (-workers). Its counters land in reg, so
	// /metrics shows coordinator and cluster health side by side.
	clust *cluster.Client

	mu     sync.Mutex
	jobs   map[int]*job
	nextID int
	wg     sync.WaitGroup
}

func newServer(ctx context.Context, maxJobs, workers int, workerURLs []string) *server {
	if maxJobs <= 0 {
		maxJobs = 1
	}
	s := &server{
		baseCtx: ctx,
		workers: workers,
		sem:     make(chan struct{}, maxJobs),
		reg:     metrics.NewRegistry(),
		tracer:  trace.New(trace.DefaultCapacity),
		jobs:    make(map[int]*job),
		nextID:  1,
	}
	if len(workerURLs) > 0 {
		s.clust = cluster.NewClient(workerURLs, cluster.Options{Metrics: s.reg})
	}
	return s
}

// probeLoop health-checks the cluster workers until ctx is cancelled, so
// a worker that dies between jobs is already marked unavailable when the
// next job dispatches.
func (s *server) probeLoop(ctx context.Context, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		s.clust.ProbeAll(ctx)
		select {
		case <-tick.C:
		case <-ctx.Done():
			return
		}
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

type submitRequest struct {
	Experiment string `json:"experiment"`
	Scale      string `json:"scale,omitempty"`
	Workers    int    `json:"workers,omitempty"`
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	known := false
	for _, id := range vasched.ExperimentIDs() {
		if id == req.Experiment {
			known = true
			break
		}
	}
	if !known {
		httpError(w, http.StatusBadRequest, "unknown experiment %q (see /v1/experiments)", req.Experiment)
		return
	}
	scale := vasched.Scale(req.Scale)
	if scale == "" {
		scale = vasched.ScaleQuick
	}
	if scale != vasched.ScaleQuick && scale != vasched.ScaleDefault {
		httpError(w, http.StatusBadRequest, "unknown scale %q (quick or default)", req.Scale)
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.workers
	}

	jobCtx, cancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	j := &job{
		ID:         s.nextID,
		Experiment: req.Experiment,
		Scale:      scale,
		Workers:    workers,
		Status:     statusQueued,
		Submitted:  time.Now(),
		cancel:     cancel,
	}
	s.nextID++
	s.jobs[j.ID] = j
	s.wg.Add(1)
	s.mu.Unlock()
	s.reg.Counter(`vaschedd_jobs_submitted_total`).Inc()

	go s.run(jobCtx, j)

	v, _ := s.view(j.ID)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(v)
}

// run executes one job: it waits for a concurrency slot, runs the
// experiment with the job's context threaded through the farm engine,
// and records the outcome plus latency metrics.
func (s *server) run(ctx context.Context, j *job) {
	defer s.wg.Done()
	defer j.cancel()

	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.finish(j, nil, "", ctx.Err())
		return
	}
	s.mu.Lock()
	j.Status = statusRunning
	j.Started = time.Now()
	s.mu.Unlock()

	opts := []vasched.RunOption{
		vasched.WithWorkers(j.Workers),
		vasched.WithContext(trace.WithTracer(ctx, s.tracer)),
		vasched.WithDecideHist(s.reg.Histogram(
			fmt.Sprintf("vaschedd_decide_seconds{experiment=%q}", j.Experiment))),
	}
	if s.clust != nil {
		opts = append(opts, vasched.WithCluster(s.clust))
	}
	res, err := vasched.RunExperimentResult(j.Experiment, j.Scale, opts...)
	rendered := ""
	if err == nil {
		rendered = res.Render()
	}
	s.finish(j, res, rendered, err)
}

// finish records a job outcome and its metrics.
func (s *server) finish(j *job, res vasched.ExperimentResult, rendered string, err error) {
	s.mu.Lock()
	j.Finished = time.Now()
	switch {
	case err == nil:
		j.Status = statusDone
		j.Result = res
		j.Rendered = rendered
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.Status = statusCancelled
		j.Error = err.Error()
	default:
		j.Status = statusFailed
		j.Error = err.Error()
	}
	status := j.Status
	var elapsed time.Duration
	if !j.Started.IsZero() {
		elapsed = j.Finished.Sub(j.Started)
	}
	exp := j.Experiment
	s.mu.Unlock()

	s.reg.Counter(fmt.Sprintf("vaschedd_jobs_total{status=%q}", status)).Inc()
	if status == statusDone {
		s.reg.Histogram(fmt.Sprintf("vaschedd_job_seconds{experiment=%q}", exp)).Observe(elapsed.Seconds())
	}
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]int, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Sort(sort.Reverse(sort.IntSlice(ids)))
	views := make([]jobView, 0, len(ids))
	for _, id := range ids {
		if v, ok := s.view(id); ok {
			views = append(views, v)
		}
	}
	writeJSON(w, views)
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return
	}
	v, ok := s.view(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	writeJSON(w, v)
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	j, ok := s.jobs[id]
	var cancel context.CancelFunc
	if ok && (j.Status == statusQueued || j.Status == statusRunning) {
		cancel = j.cancel
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	if cancel != nil {
		cancel()
	}
	v, _ := s.view(id)
	writeJSON(w, v)
}

func (s *server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"experiments": vasched.ExperimentIDs()})
}

func (s *server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.clust == nil {
		writeJSON(w, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, map[string]any{"enabled": true, "workers": s.clust.Workers()})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := experiments.SharedDieCacheStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE vaschedd_die_cache_hits_total counter\nvaschedd_die_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# TYPE vaschedd_die_cache_misses_total counter\nvaschedd_die_cache_misses_total %d\n", misses)
	fmt.Fprint(w, s.reg.Render())
}

// debugMux is the operator-only debug surface (-debug-addr): pprof
// profiles plus the collected spans as Chrome trace_event JSON. It is a
// separate listener so profiling and trace dumps never ride the job API's
// address (or its exposure).
func (s *server) debugMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/trace", s.handleDebugTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleDebugTrace dumps the span ring buffer in Chrome trace_event
// format — load it in chrome://tracing or Perfetto.
func (s *server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	trace.WriteChrome(w, s.tracer.Snapshot())
}

// view snapshots a job for serialisation.
func (s *server) view(id int) (jobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return jobView{}, false
	}
	v := jobView{
		ID:         j.ID,
		Experiment: j.Experiment,
		Scale:      string(j.Scale),
		Workers:    j.Workers,
		Status:     string(j.Status),
		Error:      j.Error,
		Submitted:  j.Submitted,
		Result:     j.Result,
		Rendered:   j.Rendered,
	}
	if !j.Started.IsZero() {
		t := j.Started
		v.Started = &t
		end := j.Finished
		if end.IsZero() {
			end = time.Now()
		}
		v.ElapsedSec = end.Sub(t).Seconds()
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		v.Finished = &t
	}
	return v, true
}

// cancelAll cancels every queued or running job (graceful shutdown).
func (s *server) cancelAll() {
	s.mu.Lock()
	var cancels []context.CancelFunc
	for _, j := range s.jobs {
		if j.Status == statusQueued || j.Status == statusRunning {
			cancels = append(cancels, j.cancel)
		}
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// wait blocks until every job goroutine has exited or ctx expires.
func (s *server) wait(ctx context.Context) {
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are already out; nothing useful left to do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
