package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"vasched/internal/jobstore"
)

// buildVaschedd compiles the real binary once per test run.
func buildVaschedd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vaschedd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// coordProc is one spawned coordinator process.
type coordProc struct {
	cmd *exec.Cmd
	url string
}

// startCoordinator launches the binary against dataDir on an ephemeral
// port and parses the bound address from its startup log line.
func startCoordinator(t *testing.T, bin, dataDir string, extra ...string) *coordProc {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-max-jobs", "1",
		"-drain", "5s",
	}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "vaschedd: listening on "); ok {
				addr, _, _ := strings.Cut(rest, " ")
				addrCh <- addr
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &coordProc{cmd: cmd, url: "http://" + addr}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator did not report its listen address")
		return nil
	}
}

func (p *coordProc) submit(t *testing.T, body string) uint64 {
	t.Helper()
	resp, err := http.Post(p.url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit = %d: %s", resp.StatusCode, raw)
	}
	var v struct {
		ID uint64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.ID
}

func (p *coordProc) job(t *testing.T, id uint64) map[string]any {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", p.url, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func (p *coordProc) waitDone(t *testing.T, id uint64, timeout time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		m := p.job(t, id)
		switch m["status"] {
		case "done":
			return m
		case "failed", "cancelled":
			t.Fatalf("job %d ended %v: %v", id, m["status"], m["error"])
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %d not done within %v", id, timeout)
	return nil
}

// TestCrashRecoveryEndToEnd is the durability acceptance test on the
// real binary: a coordinator is SIGKILLed mid-run, restarted over the
// same WAL directory, and every submitted job still finishes — with
// output byte-identical to the committed goldens. A final SIGTERM
// seals the log so a third lifetime sees a clean shutdown, and job IDs
// never collide across all three lifetimes.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real coordinator processes and runs full experiments")
	}
	bin := buildVaschedd(t)
	dataDir := t.TempDir()

	p1 := startCoordinator(t, bin, dataDir, "-coord-id", "life-1")
	ids := []uint64{
		p1.submit(t, `{"experiment":"fig4","scale":"quick"}`),
		p1.submit(t, `{"experiment":"table5","scale":"quick","lane":"control"}`),
		p1.submit(t, `{"experiment":"fig6","scale":"quick","lane":"batch"}`),
	}
	if ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("ids = %v", ids)
	}

	// Kill -9 as soon as the first job is observed running (or the
	// instant it finished — either way the log has unfinished work).
	deadline := time.Now().Add(time.Minute)
	for {
		st := p1.job(t, ids[0])["status"]
		if st == "running" || st == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job 1 never started")
		}
	}
	if err := p1.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no shutdown record
		t.Fatal(err)
	}
	p1.cmd.Wait()

	// Lifetime 2 replays the torn log and finishes everything.
	p2 := startCoordinator(t, bin, dataDir, "-coord-id", "life-2")
	for i, exp := range []string{"fig4", "table5", "fig6"} {
		m := p2.waitDone(t, ids[i], 5*time.Minute)
		golden, err := os.ReadFile(filepath.Join("..", "..", "internal", "experiments", "testdata", "golden", exp+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		if rendered, _ := m["rendered"].(string); rendered != string(golden) {
			t.Fatalf("job %d (%s) diverges from golden after crash recovery:\n%q", ids[i], exp, rendered)
		}
	}

	// The replay is visible on /metrics, and IDs continue monotonically.
	resp, err := http.Get(p2.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "vaschedd_crash_recovered 1") {
		t.Fatalf("metrics missing crash-recovery gauge:\n%s", raw)
	}
	if id := p2.submit(t, `{"experiment":"fig6","scale":"quick"}`); id != 4 {
		t.Fatalf("post-crash submit id = %d, want 4", id)
	}
	p2.waitDone(t, 4, 5*time.Minute)

	// Lifetime 2 exits cleanly; the sealed log replays without the
	// crash flag and with every job terminal.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p2.cmd.Wait(); err != nil {
		t.Fatalf("graceful exit: %v", err)
	}
	store, err := jobstore.Open(jobstore.Options{Dir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if st := store.Stats(); st.CrashRecovered {
		t.Fatalf("clean shutdown replayed as crash: %+v", st)
	}
	for id := uint64(1); id <= 4; id++ {
		j, ok := store.Get(id)
		if !ok || j.Status != jobstore.StatusDone {
			t.Fatalf("job %d after two lifetimes = %+v", id, j)
		}
	}
}
