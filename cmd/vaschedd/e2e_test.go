package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vasched/internal/cluster"
	"vasched/internal/experiments"
	"vasched/internal/metrics"
)

// startWorkers boots n real worker processes-in-miniature: the same
// cluster.Handler + experiments.Executor stack `vaschedd -worker` serves,
// each on its own loopback listener.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		ts := httptest.NewServer(cluster.Handler(experiments.NewExecutor(2), metrics.NewRegistry()))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestClusterEndToEnd is the full coordinator+workers acceptance flow on
// real loopback listeners: submit → poll → result → cancel, with scrapes
// of /healthz, /metrics, and /v1/cluster along the way, and the rendered
// report checked byte-for-byte against the committed golden — proving a
// clustered service run is indistinguishable from a local test run.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end cluster flow runs full experiments")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	urls := startWorkers(t, 2)
	srv, ts := startServer(t, serverConfig{MaxJobs: 2, Workers: 2, WorkerURLs: urls})
	go srv.probeLoop(ctx, 50*time.Millisecond)

	// Liveness and worker registry respond before any job runs.
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	_, body := get(t, ts.URL+"/v1/cluster")
	var cl struct {
		Enabled bool                 `json:"enabled"`
		Workers []cluster.WorkerInfo `json:"workers"`
	}
	if err := json.Unmarshal([]byte(body), &cl); err != nil {
		t.Fatal(err)
	}
	if !cl.Enabled || len(cl.Workers) != 2 {
		t.Fatalf("/v1/cluster = %s", body)
	}

	// Submit the sharded experiment, poll to completion, compare its
	// rendered report against the committed golden byte for byte.
	j := postJob(t, ts, `{"experiment":"ext-cluster","scale":"quick"}`)
	m := waitStatus(t, ts, j.ID, "done", 5*time.Minute)
	golden, err := os.ReadFile(filepath.Join("..", "..", "internal", "experiments", "testdata", "golden", "ext-cluster.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if rendered, _ := m["rendered"].(string); rendered != string(golden) {
		t.Fatalf("clustered service run diverges from golden:\n%q\nvs\n%q", rendered, golden)
	}
	if res, ok := m["result"].(map[string]any); !ok || res["Checksum"] == "" {
		t.Fatalf("result not typed JSON: %v", m["result"])
	}

	// The shards really crossed the wire: the coordinator counted them,
	// and the shared registry renders both job and cluster metrics.
	_, mets := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		`cluster_shards_total{status="ok"}`,
		`vaschedd_jobs_total{status="done"} 1`,
	} {
		if !strings.Contains(mets, want) {
			t.Fatalf("metrics missing %q:\n%s", want, mets)
		}
	}
	validatePrometheus(t, mets)

	// The debug surface serves the clustered run's spans as Chrome trace
	// JSON: the kernel fan-out and every shard dispatch are in there.
	dbg := httptest.NewServer(srv.debugMux())
	t.Cleanup(dbg.Close)
	_, traceBody := get(t, dbg.URL+"/debug/trace")
	var chrome struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(traceBody), &chrome); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v\n%s", err, traceBody)
	}
	spanNames := map[string]int{}
	okDispatch := false
	for _, ev := range chrome.TraceEvents {
		spanNames[ev.Name]++
		if ev.Name == "cluster.dispatch" && ev.Args["status"] == "ok" {
			okDispatch = true
		}
	}
	for _, want := range []string{"env.kernel", "cluster.run", "cluster.shard", "cluster.dispatch"} {
		if spanNames[want] == 0 {
			t.Fatalf("/debug/trace missing %q spans (got %v)", want, spanNames)
		}
	}
	if !okDispatch {
		t.Fatal("/debug/trace has no successful cluster.dispatch span")
	}
	if code, _ := get(t, dbg.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline = %d", code)
	}

	// Cancel flow: a paper-scale job is aborted mid-flight.
	j2 := postJob(t, ts, `{"experiment":"ext-cluster","scale":"default"}`)
	waitStatus(t, ts, j2.ID, "running", time.Minute)
	cancelJob(t, ts, j2.ID)
	waitStatus(t, ts, j2.ID, "cancelled", time.Minute)
}

// validatePrometheus checks text-exposition shape: every sample belongs
// to a family declared by a preceding # TYPE line (histogram samples via
// their _bucket/_sum/_count suffixes), and label blocks are balanced.
func validatePrometheus(t *testing.T, body string) {
	t.Helper()
	declared := map[string]string{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) == 4 && f[1] == "TYPE" {
				declared[f[2]] = f[3]
			}
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if strings.Contains(line, "{") != strings.Contains(line, "}") {
			t.Fatalf("unbalanced label braces: %q", line)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suffix); ok && declared[f] == "histogram" {
				family = f
				break
			}
		}
		if declared[family] == "" {
			t.Fatalf("sample %q has no preceding # TYPE for %q", line, family)
		}
	}
}

// TestClusterSurvivesWorkerLoss kills one of two workers mid-service:
// jobs keep succeeding (retried onto the survivor or degraded to local)
// and render identically to the all-workers run.
func TestClusterSurvivesWorkerLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end cluster flow runs full experiments")
	}
	w1 := httptest.NewServer(cluster.Handler(experiments.NewExecutor(2), metrics.NewRegistry()))
	t.Cleanup(w1.Close)
	w2 := httptest.NewServer(cluster.Handler(experiments.NewExecutor(2), metrics.NewRegistry()))
	_, ts := startServer(t, serverConfig{MaxJobs: 2, Workers: 2, WorkerURLs: []string{w1.URL, w2.URL}})

	j1 := postJob(t, ts, `{"experiment":"ext-cluster","scale":"quick"}`)
	m1 := waitStatus(t, ts, j1.ID, "done", 5*time.Minute)

	w2.Close() // one worker dies between jobs

	j2 := postJob(t, ts, `{"experiment":"ext-cluster","scale":"quick"}`)
	m2 := waitStatus(t, ts, j2.ID, "done", 5*time.Minute)
	if m1["rendered"] != m2["rendered"] {
		t.Fatal("run after worker loss diverges from healthy run")
	}
}

// TestSplitURLs pins the -workers flag parsing.
func TestSplitURLs(t *testing.T) {
	got := splitURLs(" http://a:1/, ,http://b:2 ,")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("splitURLs = %v", got)
	}
	if got := splitURLs(""); got != nil {
		t.Fatalf("splitURLs(\"\") = %v", got)
	}
}
