package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: vasched/internal/lp
cpu: some cpu
BenchmarkSolve-8         	    1000	   1052341 ns/op	  524288 B/op	      12 allocs/op
BenchmarkSolveWarm-8     	    5000	    201234 ns/op	       0 B/op	       0 allocs/op
BenchmarkAnneal-8        	     200	   7000000 ns/op	       1.25 swaps/op
PASS
ok  	vasched/internal/lp	2.042s
`

func TestParseBenchOutput(t *testing.T) {
	bs, err := parseBenchOutput(sampleBenchOutput)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(bs))
	}
	b := bs[0]
	if b.Package != "vasched/internal/lp" || b.Name != "BenchmarkSolve" ||
		b.Iterations != 1000 || b.NsPerOp != 1052341 || b.BytesPerOp != 524288 || b.AllocsPerOp != 12 {
		t.Fatalf("first benchmark = %+v", b)
	}
	if bs[2].Metrics["swaps/op"] != 1.25 {
		t.Fatalf("custom metric not captured: %+v", bs[2])
	}
}

func TestParseBenchOutputBadValue(t *testing.T) {
	if _, err := parseBenchOutput("BenchmarkX-4 100 oops ns/op\n"); err == nil {
		t.Fatal("bad value accepted")
	}
}

func TestTrimProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkSolve-8":      "BenchmarkSolve",
		"BenchmarkSolve-128":    "BenchmarkSolve",
		"BenchmarkSolve":        "BenchmarkSolve",
		"BenchmarkSolve-warm":   "BenchmarkSolve-warm",
		"BenchmarkSolve-warm-2": "BenchmarkSolve-warm",
	} {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLatestSnapshot(t *testing.T) {
	dir := t.TempDir()
	if got := latestSnapshot(dir); got != "" {
		t.Fatalf("empty dir returned %q", got)
	}
	for _, name := range []string{"BENCH_2026-01-05.json", "BENCH_2026-03-01.json", "BENCH_2025-12-31.json", "other.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got := latestSnapshot(dir); filepath.Base(got) != "BENCH_2026-03-01.json" {
		t.Fatalf("latestSnapshot = %q, want newest date", got)
	}
}

// TestCompareThresholdMath pins the regression arithmetic: delta is
// percent over the OLD time, strictly-greater-than the threshold counts,
// missing baselines print as new without counting.
func TestCompareThresholdMath(t *testing.T) {
	prev := &Snapshot{Benchmarks: []Benchmark{
		{Package: "p", Name: "BenchmarkA", NsPerOp: 100},
		{Package: "p", Name: "BenchmarkB", NsPerOp: 100},
		{Package: "p", Name: "BenchmarkC", NsPerOp: 100},
		{Package: "p", Name: "BenchmarkZero", NsPerOp: 0},
	}}
	cur := &Snapshot{Benchmarks: []Benchmark{
		{Package: "p", Name: "BenchmarkA", NsPerOp: 120}, // exactly +20%: not a regression at threshold 20
		{Package: "p", Name: "BenchmarkB", NsPerOp: 121}, // +21%: regression
		{Package: "p", Name: "BenchmarkC", NsPerOp: 80},  // improvement
		{Package: "p", Name: "BenchmarkZero", NsPerOp: 5},
		{Package: "p", Name: "BenchmarkNew", NsPerOp: 50},
	}}
	var buf strings.Builder
	got := compare(&buf, prev, cur, "base.json", 20)
	if got != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", got, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "comparison vs base.json") {
		t.Fatalf("missing header:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	markers := 0
	for _, l := range lines {
		if strings.Contains(l, "<< REGRESSION") {
			if !strings.Contains(l, "BenchmarkB") {
				t.Errorf("regression marker on wrong line: %q", l)
			}
			markers++
		}
		if strings.Contains(l, "BenchmarkNew") && !strings.Contains(l, "new") {
			t.Errorf("new benchmark not marked: %q", l)
		}
	}
	if markers != 1 {
		t.Fatalf("marker count = %d, want 1\n%s", markers, out)
	}
}

// TestFingerprintWarning: comparing snapshots from different hosts prints
// the loud mismatch banner (including both fingerprints), same-host
// comparisons stay quiet, and a legacy snapshot without num_cpu renders
// as cpu? so the mismatch still surfaces.
func TestFingerprintWarning(t *testing.T) {
	ref := &Snapshot{GOOS: "linux", GOARCH: "amd64", NumCPU: 1}
	other := &Snapshot{GOOS: "linux", GOARCH: "amd64", NumCPU: 16}
	var buf strings.Builder
	compare(&buf, ref, other, "base.json", 20)
	out := buf.String()
	if !strings.Contains(out, "HOST FINGERPRINT MISMATCH") ||
		!strings.Contains(out, "linux/amd64/cpu1") || !strings.Contains(out, "linux/amd64/cpu16") {
		t.Fatalf("mismatch banner missing or incomplete:\n%s", out)
	}

	buf.Reset()
	compare(&buf, ref, ref, "base.json", 20)
	if strings.Contains(buf.String(), "MISMATCH") {
		t.Fatalf("same-host comparison warned:\n%s", buf.String())
	}

	legacy := &Snapshot{GOOS: "linux", GOARCH: "amd64"}
	buf.Reset()
	compare(&buf, legacy, other, "base.json", 20)
	if !strings.Contains(buf.String(), "linux/amd64/cpu?") {
		t.Fatalf("legacy snapshot fingerprint not rendered as cpu?:\n%s", buf.String())
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	if _, err := readSnapshot(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSnapshot(bad); err == nil {
		t.Fatal("malformed snapshot accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
