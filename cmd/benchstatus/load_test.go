package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vasched/internal/loadsnap"
)

func writeLoad(t *testing.T, dir, name string, mut func(*loadsnap.Snapshot)) string {
	t.Helper()
	s := &loadsnap.Snapshot{
		Date:      strings.TrimSuffix(strings.TrimPrefix(name, "LOAD_"), ".json"),
		GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 1,
		Seed: 42, Jobs: 1000, Tenants: 3, Clients: 16,
		DurationSec: 60, JobsPerSec: 18, MaxSustainedJobsPerSec: 18, SLOPass: true,
		Latency: map[string]loadsnap.Quantiles{"client": {P50: 0.5, P95: 2, P99: 3}},
		Counts:  loadsnap.Counts{Submitted: 1000, Done: 1000},
	}
	if mut != nil {
		mut(s)
	}
	path := filepath.Join(dir, name)
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadModeFlatPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeLoad(t, dir, "LOAD_2026-01-01.json", nil)
	cur := writeLoad(t, dir, "LOAD_2026-02-02.json", nil)

	var buf bytes.Buffer
	if err := run([]string{"-load", cur, "-load-baseline", base, "-check"}, &buf); err != nil {
		t.Fatalf("flat compare failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "capacity jobs/s") {
		t.Fatalf("no capacity row:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("flat compare flagged a regression:\n%s", buf.String())
	}
}

func TestLoadModeGatesCapacityRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeLoad(t, dir, "LOAD_2026-01-01.json", nil)
	cur := writeLoad(t, dir, "LOAD_2026-02-02.json", func(s *loadsnap.Snapshot) {
		s.JobsPerSec, s.MaxSustainedJobsPerSec = 10, 10 // 44% drop from 18
	})

	var buf bytes.Buffer
	err := run([]string{"-load", cur, "-load-baseline", base, "-check"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "capacity regressed") {
		t.Fatalf("err = %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "<< REGRESSION") {
		t.Fatalf("regression marker missing:\n%s", buf.String())
	}

	// Without -check the same drop reports but does not fail.
	buf.Reset()
	if err := run([]string{"-load", cur, "-load-baseline", base}, &buf); err != nil {
		t.Fatalf("report-only mode failed: %v", err)
	}

	// A drop inside the threshold never fails.
	small := writeLoad(t, dir, "LOAD_2026-03-03.json", func(s *loadsnap.Snapshot) {
		s.JobsPerSec, s.MaxSustainedJobsPerSec = 16, 16 // 11% drop
	})
	buf.Reset()
	if err := run([]string{"-load", small, "-load-baseline", base, "-check"}, &buf); err != nil {
		t.Fatalf("11%% drop failed the 20%% gate: %v", err)
	}
}

func TestLoadModeFingerprintMismatchIsAdvisory(t *testing.T) {
	dir := t.TempDir()
	base := writeLoad(t, dir, "LOAD_2026-01-01.json", func(s *loadsnap.Snapshot) { s.NumCPU = 64 })
	cur := writeLoad(t, dir, "LOAD_2026-02-02.json", func(s *loadsnap.Snapshot) {
		s.JobsPerSec, s.MaxSustainedJobsPerSec = 5, 5 // huge drop, but cross-host
	})

	var buf bytes.Buffer
	if err := run([]string{"-load", cur, "-load-baseline", base, "-check"}, &buf); err != nil {
		t.Fatalf("cross-host compare failed the gate: %v", err)
	}
	if !strings.Contains(buf.String(), "HOST FINGERPRINT MISMATCH") {
		t.Fatalf("no fingerprint warning:\n%s", buf.String())
	}
}

func TestLoadModeBaselineDiscovery(t *testing.T) {
	dir := t.TempDir()
	writeLoad(t, dir, "LOAD_2026-01-01.json", nil)
	cur := writeLoad(t, dir, "LOAD_2026-02-02.json", nil)

	// latestLoadBaseline skips the snapshot under test even when it is
	// the newest file on disk.
	if got := latestLoadBaseline(dir, cur); filepath.Base(got) != "LOAD_2026-01-01.json" {
		t.Fatalf("baseline = %q", got)
	}
	only := filepath.Join(dir, "LOAD_2026-02-02.json")
	os.Remove(filepath.Join(dir, "LOAD_2026-01-01.json"))
	if got := latestLoadBaseline(dir, only); got != "" {
		t.Fatalf("self-comparison baseline = %q", got)
	}

	// With no baseline at all, -load reports and succeeds.
	var buf bytes.Buffer
	cwd, _ := os.Getwd()
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)
	if err := run([]string{"-load", "LOAD_2026-02-02.json", "-check"}, &buf); err != nil {
		t.Fatalf("no-baseline run failed: %v", err)
	}
	if !strings.Contains(buf.String(), "no baseline") {
		t.Fatalf("missing no-baseline notice:\n%s", buf.String())
	}
}

func TestLoadModeRejectsInvalidSnapshots(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "LOAD_bad.json")
	os.WriteFile(bad, []byte(`{"date":""}`), 0o644)
	var buf bytes.Buffer
	if err := run([]string{"-load", bad}, &buf); err == nil {
		t.Fatal("invalid snapshot accepted")
	}
	if err := run([]string{"-load", filepath.Join(dir, "absent.json")}, &buf); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}
