package main

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"vasched/internal/loadsnap"
)

// runLoad is the LOAD_*.json capacity-gate mode (-load): compare the
// given vaschedload snapshot against a baseline capacity snapshot and,
// with -check, fail on a capacity drop beyond -threshold percent.
// Latency p99 deltas print alongside but never gate — they are bound to
// the run's SLO thresholds, which already gated inside vaschedload.
func runLoad(stdout io.Writer, curPath, baselinePath string, threshold float64, check bool) error {
	cur, err := loadsnap.Read(curPath)
	if err != nil {
		return fmt.Errorf("load snapshot: %w", err)
	}
	if baselinePath == "" {
		baselinePath = latestLoadBaseline(".", curPath)
	}
	if baselinePath == "" {
		fmt.Fprintf(stdout, "%s: %.1f jobs/s sustained (%s)\n", curPath, cur.Capacity(), cur.Fingerprint())
		fmt.Fprintln(stdout, "no baseline LOAD_*.json found; nothing to compare")
		return nil
	}
	prev, err := loadsnap.Read(baselinePath)
	if err != nil {
		return fmt.Errorf("load baseline: %w", err)
	}

	deltas, mismatch := loadsnap.Compare(prev, cur, threshold)
	fmt.Fprintf(stdout, "\ncapacity comparison vs %s:\n", baselinePath)
	if mismatch {
		fmt.Fprintf(stdout, "\n"+
			"  *** HOST FINGERPRINT MISMATCH: baseline %s, this machine %s ***\n"+
			"  *** cross-machine capacity is not comparable — deltas below ***\n"+
			"  *** are advisory only; refresh the LOAD_*.json baseline on  ***\n"+
			"  *** the reference machine before trusting any regression.   ***\n\n",
			prev.Fingerprint(), cur.Fingerprint())
	}
	fmt.Fprintf(stdout, "%-24s %14s %14s %8s\n", "metric", "old", "new", "delta")
	regressions := 0
	for _, d := range deltas {
		marker := ""
		if d.Regression {
			marker = "  << REGRESSION"
			regressions++
		}
		fmt.Fprintf(stdout, "%-24s %14.3f %14.3f %+7.1f%%%s\n", d.Metric, d.Old, d.New, d.Pct, marker)
	}
	if check && !mismatch && regressions > 0 {
		return fmt.Errorf("capacity regressed more than %.0f%% vs %s", threshold, baselinePath)
	}
	return nil
}

// latestLoadBaseline returns the newest LOAD_*.json in dir other than
// the snapshot under test, so a freshly written snapshot never compares
// against itself.
func latestLoadBaseline(dir, exclude string) string {
	matches, _ := filepath.Glob(filepath.Join(dir, "LOAD_*.json"))
	sort.Strings(matches) // ISO-8601 dates: lexical order is temporal
	excl, _ := filepath.Abs(exclude)
	for i := len(matches) - 1; i >= 0; i-- {
		abs, _ := filepath.Abs(matches[i])
		if abs != excl {
			return matches[i]
		}
	}
	return ""
}
