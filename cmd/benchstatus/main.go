// Command benchstatus is the repository's persistent benchmark harness.
// It runs the benchmark suite (the paper-artefact benchmarks in the repo
// root plus the hot-path micro-benchmarks in internal/...) with
// -benchmem, writes a BENCH_<date>.json snapshot, and compares against
// the previous snapshot so performance wins and losses are recorded, not
// remembered.
//
// Usage:
//
//	go run ./cmd/benchstatus                  # snapshot + compare vs latest BENCH_*.json
//	go run ./cmd/benchstatus -check           # also exit 1 on >threshold ns/op regressions
//	go run ./cmd/benchstatus -baseline F.json # compare against a specific snapshot
//	go run ./cmd/benchstatus -pkgs ./internal/lp -bench Solve
//
// It also gates the cmd/vaschedload capacity snapshots: -load compares
// a LOAD_*.json against the newest committed one (or -load-baseline)
// and, with -check, fails on a sustained-capacity drop beyond
// -threshold percent:
//
//	go run ./cmd/benchstatus -load LOAD_2026-08-08.json -check
//
// The committed BENCH_*.json files are the baselines CI regresses
// against (make ci). Timings from different machines are not comparable;
// refresh the baseline when the reference machine changes. The same
// host-fingerprint rule applies to LOAD_*.json capacity baselines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one measured benchmark in a snapshot.
type Benchmark struct {
	Package     string             `json:"package"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the persisted BENCH_<date>.json document.
type Snapshot struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU completes the host fingerprint: timings from machines with
	// different core counts (or OS/arch) are not comparable, and compare
	// warns loudly when fingerprints differ.
	NumCPU     int         `json:"num_cpu,omitempty"`
	BenchTime  string      `json:"benchtime"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Fingerprint renders the host identity a snapshot's timings are bound
// to. Old snapshots without num_cpu render with cpu? so a mismatch
// against them still warns rather than silently comparing.
func (s *Snapshot) Fingerprint() string {
	cpu := "cpu?"
	if s.NumCPU > 0 {
		cpu = fmt.Sprintf("cpu%d", s.NumCPU)
	}
	return fmt.Sprintf("%s/%s/%s", s.GOOS, s.GOARCH, cpu)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchstatus:", err)
		os.Exit(1)
	}
}

// run is the testable CLI core: parse args, run the suite, write the
// snapshot, and compare. Regressions beyond -threshold with -check set
// surface as a non-nil error.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchstatus", flag.ContinueOnError)
	var (
		pkgs      = fs.String("pkgs", "./internal/grf,./internal/thermal,./internal/linsolve,./internal/lp,./internal/pm,./internal/anneal,./internal/cpusim,./internal/fft,./internal/jobstore,./internal/diecache,./internal/varmodel,./internal/adapt,.", "comma-separated packages to benchmark")
		bench     = fs.String("bench", ".", "benchmark regex passed to go test -bench")
		benchtime = fs.String("benchtime", "0.3s", "value passed to go test -benchtime")
		out       = fs.String("out", "", "output snapshot path (default BENCH_<date>.json in the repo root)")
		baseline  = fs.String("baseline", "", "snapshot to compare against (default: newest committed BENCH_*.json)")
		threshold = fs.Float64("threshold", 20, "ns/op regression percentage treated as a failure with -check")
		check     = fs.Bool("check", false, "exit non-zero if any benchmark regressed more than -threshold vs the baseline")
		nowrite   = fs.Bool("nowrite", false, "skip writing the snapshot file")
		load      = fs.String("load", "", "LOAD_*.json capacity snapshot to gate instead of running benchmarks")
		loadBase  = fs.String("load-baseline", "", "LOAD_*.json baseline for -load (default: newest committed LOAD_*.json)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *load != "" {
		return runLoad(stdout, *load, *loadBase, *threshold, *check)
	}

	snap, err := runSuite(strings.Split(*pkgs, ","), *bench, *benchtime)
	if err != nil {
		return err
	}

	prevPath := *baseline
	if prevPath == "" {
		prevPath = latestSnapshot(".")
	}
	var prev *Snapshot
	if prevPath != "" {
		prev, err = readSnapshot(prevPath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}

	outPath := *out
	if outPath == "" {
		outPath = fmt.Sprintf("BENCH_%s.json", snap.Date)
	}
	if !*nowrite {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d benchmarks)\n", outPath, len(snap.Benchmarks))
	}

	if prev == nil {
		fmt.Fprintln(stdout, "no baseline snapshot found; nothing to compare")
		return nil
	}
	regressions := compare(stdout, prev, snap, prevPath, *threshold)
	if *check && regressions > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%", regressions, *threshold)
	}
	return nil
}

// runSuite runs go test -bench over each package and parses the output.
func runSuite(pkgs []string, bench, benchtime string) (*Snapshot, error) {
	snap := &Snapshot{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		BenchTime: benchtime,
	}
	for _, pkg := range pkgs {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench,
			"-benchmem", "-benchtime", benchtime, pkg)
		outBuf, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("%s: %v\n%s", pkg, err, outBuf)
		}
		bs, err := parseBenchOutput(string(outBuf))
		if err != nil {
			return nil, fmt.Errorf("%s: %v", pkg, err)
		}
		snap.Benchmarks = append(snap.Benchmarks, bs...)
	}
	return snap, nil
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// parseBenchOutput extracts benchmark results from go test output. Each
// benchmark line carries space-separated "<value> <unit>" pairs after the
// iteration count; ns/op, B/op, and allocs/op land in dedicated fields
// and everything else (ReportMetric output) goes into Metrics.
func parseBenchOutput(out string) ([]Benchmark, error) {
	var res []Benchmark
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		mm := benchLine.FindStringSubmatch(line)
		if mm == nil {
			continue
		}
		iters, err := strconv.ParseInt(mm[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q", line)
		}
		b := Benchmark{Package: pkg, Name: trimProcSuffix(mm[1]), Iterations: iters}
		fields := strings.Fields(mm[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[fields[i+1]] = v
			}
		}
		res = append(res, b)
	}
	return res, nil
}

// trimProcSuffix drops the -GOMAXPROCS suffix so snapshots from machines
// with different core counts still align by name.
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// latestSnapshot returns the newest BENCH_*.json in dir, or "".
func latestSnapshot(dir string) string {
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if len(matches) == 0 {
		return ""
	}
	sort.Strings(matches) // dates are ISO-8601, so lexical order is temporal
	return matches[len(matches)-1]
}

func readSnapshot(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &s, nil
}

// compare prints a delta table against the baseline and returns how many
// benchmarks regressed beyond threshold percent ns/op.
func compare(w io.Writer, prev, cur *Snapshot, prevPath string, threshold float64) int {
	base := map[string]Benchmark{}
	for _, b := range prev.Benchmarks {
		base[b.Package+"."+b.Name] = b
	}
	fmt.Fprintf(w, "\ncomparison vs %s:\n", prevPath)
	if pf, cf := prev.Fingerprint(), cur.Fingerprint(); pf != cf {
		fmt.Fprintf(w, "\n"+
			"  *** HOST FINGERPRINT MISMATCH: baseline %s, this machine %s ***\n"+
			"  *** cross-machine timings are not comparable — deltas below  ***\n"+
			"  *** are advisory only; refresh with `make benchsnap` on the  ***\n"+
			"  *** reference machine before trusting any regression.        ***\n\n", pf, cf)
	}
	fmt.Fprintf(w, "%-58s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	regressions := 0
	for _, b := range cur.Benchmarks {
		key := b.Package + "." + b.Name
		old, ok := base[key]
		if !ok || old.NsPerOp == 0 {
			fmt.Fprintf(w, "%-58s %14s %14.0f %8s\n", shortKey(key), "-", b.NsPerOp, "new")
			continue
		}
		delta := (b.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
		marker := ""
		if delta > threshold {
			marker = "  << REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-58s %14.0f %14.0f %+7.1f%%%s\n", shortKey(key), old.NsPerOp, b.NsPerOp, delta, marker)
	}
	return regressions
}

// shortKey strips the module prefix so the table fits a terminal.
func shortKey(key string) string {
	return strings.TrimPrefix(key, "vasched/")
}
