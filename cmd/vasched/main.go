// Command vasched reproduces the evaluation of "Variation-Aware
// Application Scheduling and Power Management for Chip Multiprocessors"
// (ISCA 2008) and runs custom scenarios on the same simulator.
//
// Usage:
//
//	vasched -list
//	vasched -experiment fig11 [-scale quick|default] [-json] [-parallel N]
//	vasched -experiment all -scale quick
//	vasched -run -sched "VarF&AppIPC" -manager LinOpt -threads 16 -budget 60
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"vasched"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "vasched:", err)
		os.Exit(1)
	}
}

// run is the testable CLI core: it parses args, executes, and writes the
// report to stdout. flag.ErrHelp is returned when there is nothing to do
// (usage has already been printed).
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("vasched", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiment ids and exit")
		expID   = fs.String("experiment", "", "experiment id to run, or 'all'")
		scale   = fs.String("scale", "default", "experiment scale: quick or default")
		asJSON  = fs.Bool("json", false, "emit experiment results as JSON instead of text")
		par     = fs.Int("parallel", runtime.GOMAXPROCS(0), "die-farm worker goroutines (1 = serial; output is identical at any setting)")
		runF    = fs.Bool("run", false, "run a custom scenario instead of a paper experiment")
		schedF  = fs.String("sched", vasched.SchedVarFAppIPC, "scheduling policy for -run")
		manager = fs.String("manager", vasched.ManagerLinOpt, "power manager for -run (DVFS mode)")
		mode    = fs.String("mode", vasched.ModeDVFS, "CMP configuration for -run")
		threads = fs.Int("threads", 8, "thread count for -run (apps drawn from the SPEC pool)")
		budget  = fs.Float64("budget", 60, "chip power target in watts for -run")
		dur     = fs.Float64("duration", 200, "simulated milliseconds for -run")
		die     = fs.Int("die", 0, "die index for -run")
		sigma   = fs.Float64("sigma", 0.12, "Vth sigma/mu for -run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *list:
		fmt.Fprintln(stdout, "experiments (DESIGN.md section 3 maps ids to paper artefacts):")
		for _, id := range vasched.ExperimentIDs() {
			fmt.Fprintln(stdout, "  "+id)
		}
		return nil
	case *runF:
		return runScenario(stdout, *schedF, *manager, *mode, *threads, *budget, *dur, *die, *sigma)
	case *expID != "":
		return runExperiments(stdout, *expID, *scale, *asJSON, *par)
	default:
		fs.Usage()
		return flag.ErrHelp
	}
}

func runExperiments(stdout io.Writer, expID, scale string, asJSON bool, workers int) error {
	ids := []string{expID}
	if expID == "all" {
		ids = vasched.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		if asJSON {
			res, err := vasched.RunExperimentResult(id, vasched.Scale(scale), vasched.WithWorkers(workers))
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			blob, err := json.MarshalIndent(map[string]any{"id": id, "result": res}, "", "  ")
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Fprintln(stdout, string(blob))
			continue
		}
		out, err := vasched.RunExperiment(id, vasched.Scale(scale), vasched.WithWorkers(workers))
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintf(stdout, "==== %s (%v) ====\n%s\n", id, time.Since(start).Round(time.Millisecond), strings.TrimRight(out, "\n"))
	}
	return nil
}

func runScenario(stdout io.Writer, schedName, manager, mode string, threads int, budget, durMS float64, die int, sigma float64) error {
	opt := vasched.DefaultOptions()
	opt.DieIndex = die
	opt.VthSigmaOverMu = sigma
	plat, err := vasched.NewPlatform(opt)
	if err != nil {
		return err
	}
	cfg := vasched.SystemConfig{Scheduler: schedName, Mode: mode, CaptureTrace: true}
	if mode == vasched.ModeDVFS {
		cfg.Manager = manager
		cfg.PTargetW = budget
		cfg.PCoreMaxW = 2 * budget / float64(threads)
	}
	sys, err := plat.NewSystem(cfg)
	if err != nil {
		return err
	}
	apps := vasched.SPECApps()
	for len(apps) < threads {
		apps = append(apps, apps[len(apps)%14])
	}
	apps = apps[:threads]

	st, err := sys.Run(apps, durMS)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "die %d (sigma/mu %.2f), %d threads, %s", die, sigma, threads, mode)
	if mode == vasched.ModeDVFS {
		fmt.Fprintf(stdout, ", %s @ %.0f W", manager, budget)
	}
	fmt.Fprintf(stdout, ", scheduler %s, %.0f ms simulated\n\n", schedName, durMS)
	fmt.Fprintf(stdout, "throughput   %9.0f MIPS (weighted %.2f)\n", st.MIPS, st.WeightedThroughput)
	fmt.Fprintf(stdout, "power        %9.1f W (dyn %.1f + static %.1f)\n", st.AvgPowerW, st.DynPowerW, st.StaticPowerW)
	if mode == vasched.ModeDVFS {
		fmt.Fprintf(stdout, "deviation    %9.2f %% from target\n", st.PowerDeviationPct)
	}
	fmt.Fprintf(stdout, "frequency    %9.2f GHz mean\n", st.AvgFrequencyGHz)
	fmt.Fprintf(stdout, "hottest block %8.1f C, worst core aging %.2fx nominal\n", st.MaxTempC, st.WearoutMax)
	if len(st.Trace) > 1 {
		const width = 60
		fmt.Fprintf(stdout, "\npower  %s\n", vasched.Sparkline(st.Trace, func(p vasched.TracePoint) float64 { return p.PowerW }, width))
		fmt.Fprintf(stdout, "MIPS   %s\n", vasched.Sparkline(st.Trace, func(p vasched.TracePoint) float64 { return p.MIPS }, width))
		fmt.Fprintf(stdout, "temp   %s\n", vasched.Sparkline(st.Trace, func(p vasched.TracePoint) float64 { return p.MaxTempC }, width))
	}
	return nil
}
