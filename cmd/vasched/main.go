// Command vasched reproduces the evaluation of "Variation-Aware
// Application Scheduling and Power Management for Chip Multiprocessors"
// (ISCA 2008) and runs custom scenarios on the same simulator.
//
// Usage:
//
//	vasched -list
//	vasched -experiment fig11 [-scale quick|default] [-json] [-parallel N]
//	vasched -experiment all -scale quick
//	vasched -experiment ext-cluster -cluster 3 -fault-rate 0.2 -trace out.json
//	vasched -experiment ext-adapt -adaptive -adapt-metric power-ratio -adapt-ci 0.02
//	vasched -run -sched "VarF&AppIPC" -manager LinOpt -threads 16 -budget 60
//	vasched -dynamic -threads 16 -duration 100 -dt-ms 1 -horizon 3,7
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"vasched"
	"vasched/internal/adapt"
	"vasched/internal/cluster"
	"vasched/internal/experiments"
	"vasched/internal/metrics"
	"vasched/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "vasched:", err)
		os.Exit(1)
	}
}

// run is the testable CLI core: it parses args, executes, and writes the
// report to stdout. flag.ErrHelp is returned when there is nothing to do
// (usage has already been printed).
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("vasched", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiment ids and exit")
		expID   = fs.String("experiment", "", "experiment id to run, or 'all'")
		scale   = fs.String("scale", "default", "experiment scale: quick or default")
		asJSON  = fs.Bool("json", false, "emit experiment results as JSON instead of text")
		par     = fs.Int("parallel", runtime.GOMAXPROCS(0), "die-farm worker goroutines (1 = serial; output is identical at any setting)")
		runF    = fs.Bool("run", false, "run a custom scenario instead of a paper experiment")
		schedF  = fs.String("sched", vasched.SchedVarFAppIPC, "scheduling policy for -run")
		manager = fs.String("manager", vasched.ManagerLinOpt, "power manager for -run (DVFS mode)")
		mode    = fs.String("mode", vasched.ModeDVFS, "CMP configuration for -run")
		threads = fs.Int("threads", 8, "thread count for -run (apps drawn from the SPEC pool)")
		budget  = fs.Float64("budget", 60, "chip power target in watts for -run")
		dur     = fs.Float64("duration", 200, "simulated milliseconds for -run")
		die     = fs.Int("die", 0, "die index for -run")
		sigma   = fs.Float64("sigma", 0.12, "Vth sigma/mu for -run")

		dynF    = fs.Bool("dynamic", false, "run the time-stepped dynamic scenario engine instead of a paper experiment (uses -sched/-threads/-duration/-die/-sigma)")
		dtMS    = fs.Float64("dt-ms", 1, "with -dynamic, thermal integration step in milliseconds")
		horizon = fs.String("horizon", "", "with -dynamic, comma-separated wearout horizon years (e.g. 3,7); each re-runs the scenario on the aged die")
		migMS   = fs.Float64("mig-penalty", 0, "with -dynamic, per-migration thread stall in milliseconds")

		traceOut  = fs.String("trace", "", "write the run's spans as a Chrome trace_event JSON file (experiments only; open in chrome://tracing or Perfetto)")
		clusterN  = fs.Int("cluster", 0, "spin up N in-process shard workers and route kernel-based die loops through them (output is identical to a local run)")
		faultRate = fs.Float64("fault-rate", 0, "with -cluster, deterministically inject dispatch faults at this rate in [0,1]; retries recover and outputs are unchanged")
		faultSeed = fs.Int64("fault-seed", 1, "seed for the -fault-rate fault plan (same seed, same faults)")

		adaptive  = fs.Bool("adaptive", false, "ext-adapt: adaptive stratified sampling with the settings below (default runs ext-adapt with its stock settings)")
		adaMetric = fs.String("adapt-metric", "", "ext-adapt target metric: power-ratio, freq-ratio, tput, or power")
		adaCI     = fs.Float64("adapt-ci", 0, "ext-adapt relative CI half-width stopping target (0 = default 0.02)")
		adaConf   = fs.Float64("adapt-confidence", 0, "ext-adapt confidence level (0 = default 0.95)")
		adaStrata = fs.Int("adapt-strata", 0, "ext-adapt severity strata (0 = default 4)")
		adaPilot  = fs.Int("adapt-pilot", 0, "ext-adapt pilot draws per stratum (0 = default 2)")
		adaRound  = fs.Int("adapt-round", 0, "ext-adapt dies per Neyman round (0 = default 8)")
		adaExact  = fs.Bool("adapt-exact", false, "ext-adapt exact verification mode: evaluate the full population in index order")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *list:
		fmt.Fprintln(stdout, "experiments (DESIGN.md section 3 maps ids to paper artefacts):")
		for _, id := range vasched.ExperimentIDs() {
			fmt.Fprintln(stdout, "  "+id)
		}
		return nil
	case *dynF:
		return runDynamic(stdout, *schedF, *threads, *dur, *die, *sigma, *dtMS, *migMS, *horizon)
	case *runF:
		return runScenario(stdout, *schedF, *manager, *mode, *threads, *budget, *dur, *die, *sigma)
	case *expID != "":
		run := expRun{
			id: *expID, scale: *scale, asJSON: *asJSON, workers: *par,
			traceOut: *traceOut, clusterN: *clusterN,
			faultRate: *faultRate, faultSeed: *faultSeed,
		}
		if *adaptive || *adaExact || *adaMetric != "" {
			run.adaptive = &experiments.AdaptiveConfig{
				Metric: *adaMetric,
				Config: adapt.Config{
					RelCI:      *adaCI,
					Confidence: *adaConf,
					Strata:     *adaStrata,
					Pilot:      *adaPilot,
					RoundSize:  *adaRound,
					Exact:      *adaExact,
				},
			}
		}
		return runExperiments(stdout, run)
	default:
		fs.Usage()
		return flag.ErrHelp
	}
}

// expRun bundles the experiment-mode flags.
type expRun struct {
	id, scale string
	asJSON    bool
	workers   int
	traceOut  string
	clusterN  int
	faultRate float64
	faultSeed int64
	adaptive  *experiments.AdaptiveConfig
}

func runExperiments(stdout io.Writer, cfg expRun) error {
	opts := []vasched.RunOption{vasched.WithWorkers(cfg.workers)}
	if cfg.adaptive != nil {
		opts = append(opts, vasched.WithAdaptive(*cfg.adaptive))
	}
	var tr *trace.Tracer
	if cfg.traceOut != "" {
		tr = trace.New(trace.DefaultCapacity)
		opts = append(opts, vasched.WithContext(trace.WithTracer(context.Background(), tr)))
	}
	if cfg.clusterN > 0 {
		client, stop, err := startLocalCluster(cfg.clusterN, cfg.workers, cfg.faultRate, cfg.faultSeed)
		if err != nil {
			return err
		}
		defer stop()
		opts = append(opts, vasched.WithCluster(client))
	}
	ids := []string{cfg.id}
	if cfg.id == "all" {
		ids = vasched.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		if cfg.asJSON {
			res, err := vasched.RunExperimentResult(id, vasched.Scale(cfg.scale), opts...)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			blob, err := json.MarshalIndent(map[string]any{"id": id, "result": res}, "", "  ")
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Fprintln(stdout, string(blob))
			continue
		}
		out, err := vasched.RunExperiment(id, vasched.Scale(cfg.scale), opts...)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintf(stdout, "==== %s (%v) ====\n%s\n", id, time.Since(start).Round(time.Millisecond), strings.TrimRight(out, "\n"))
	}
	if tr != nil {
		if err := writeTrace(cfg.traceOut, tr); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace: %d spans written to %s (%d evicted)\n", tr.Len(), cfg.traceOut, tr.Dropped())
	}
	return nil
}

// writeTrace dumps the collected spans as Chrome trace_event JSON.
func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tr.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// startLocalCluster boots n in-process shard workers on loopback listeners
// and returns a coordinator client over them. It is the single-binary
// version of `vaschedd -worker` x n: same handler, same codec, same retry
// and fault-injection machinery, no extra processes.
func startLocalCluster(n, par int, faultRate float64, faultSeed int64) (*cluster.Client, func(), error) {
	var urls []string
	var srvs []*http.Server
	stop := func() {
		for _, s := range srvs {
			s.Close()
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, fmt.Errorf("cluster worker %d: %w", i, err)
		}
		srv := &http.Server{Handler: cluster.Handler(experiments.NewExecutor(par), metrics.NewRegistry())}
		go srv.Serve(ln)
		srvs = append(srvs, srv)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	opt := cluster.Options{}
	if faultRate > 0 {
		opt.Fault = cluster.SeededFaultPlan(faultSeed, 4096, faultRate)
	}
	return cluster.NewClient(urls, opt), stop, nil
}

// runDynamic drives the time-stepped scenario engine: transient thermal
// integration, phase-shifting workloads, emergency throttling, and an
// optional wearout horizon sweep on the same die.
func runDynamic(stdout io.Writer, schedName string, threads int, durMS float64, die int, sigma, dtMS, migMS float64, horizon string) error {
	var years []float64
	if horizon != "" {
		for _, part := range strings.Split(horizon, ",") {
			y, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return fmt.Errorf("-horizon: %w", err)
			}
			years = append(years, y)
		}
	}
	opt := vasched.DefaultOptions()
	opt.DieIndex = die
	opt.VthSigmaOverMu = sigma
	plat, err := vasched.NewPlatform(opt)
	if err != nil {
		return err
	}
	apps := vasched.SPECApps()
	for len(apps) < threads {
		apps = append(apps, apps[len(apps)%14])
	}
	apps = apps[:threads]

	epochs, err := plat.RunDynamic(vasched.DynamicConfig{
		Scheduler:          schedName,
		DtMS:               dtMS,
		MigrationPenaltyMS: migMS,
		HorizonYears:       years,
	}, apps, durMS)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "dynamic scenario: die %d (sigma/mu %.2f), %d threads, scheduler %s, %.0f ms at dt=%.1f ms\n\n",
		die, sigma, threads, schedName, durMS, dtMS)
	fmt.Fprintf(stdout, "%7s %10s %9s %8s %6s %11s %9s %8s %10s\n",
		"years", "dVth(mV)", "fmax(GHz)", "MIPS", "avg W", "peak T(C)", "emergenc", "thr(ms)", "migrations")
	for _, ep := range epochs {
		st := ep.Stats
		fmt.Fprintf(stdout, "%7.1f %10.1f %9.3f %8.0f %6.1f %11.2f %9d %8.1f %10d\n",
			ep.Years, ep.DVthMaxMV, ep.MinFmaxGHz, st.MIPS, st.AvgPowerW, st.MaxTempC,
			st.Emergencies, st.ThrottledMS, st.Migrations)
	}
	return nil
}

func runScenario(stdout io.Writer, schedName, manager, mode string, threads int, budget, durMS float64, die int, sigma float64) error {
	opt := vasched.DefaultOptions()
	opt.DieIndex = die
	opt.VthSigmaOverMu = sigma
	plat, err := vasched.NewPlatform(opt)
	if err != nil {
		return err
	}
	cfg := vasched.SystemConfig{Scheduler: schedName, Mode: mode, CaptureTrace: true}
	if mode == vasched.ModeDVFS {
		cfg.Manager = manager
		cfg.PTargetW = budget
		cfg.PCoreMaxW = 2 * budget / float64(threads)
	}
	sys, err := plat.NewSystem(cfg)
	if err != nil {
		return err
	}
	apps := vasched.SPECApps()
	for len(apps) < threads {
		apps = append(apps, apps[len(apps)%14])
	}
	apps = apps[:threads]

	st, err := sys.Run(apps, durMS)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "die %d (sigma/mu %.2f), %d threads, %s", die, sigma, threads, mode)
	if mode == vasched.ModeDVFS {
		fmt.Fprintf(stdout, ", %s @ %.0f W", manager, budget)
	}
	fmt.Fprintf(stdout, ", scheduler %s, %.0f ms simulated\n\n", schedName, durMS)
	fmt.Fprintf(stdout, "throughput   %9.0f MIPS (weighted %.2f)\n", st.MIPS, st.WeightedThroughput)
	fmt.Fprintf(stdout, "power        %9.1f W (dyn %.1f + static %.1f)\n", st.AvgPowerW, st.DynPowerW, st.StaticPowerW)
	if mode == vasched.ModeDVFS {
		fmt.Fprintf(stdout, "deviation    %9.2f %% from target\n", st.PowerDeviationPct)
	}
	fmt.Fprintf(stdout, "frequency    %9.2f GHz mean\n", st.AvgFrequencyGHz)
	fmt.Fprintf(stdout, "hottest block %8.1f C, worst core aging %.2fx nominal\n", st.MaxTempC, st.WearoutMax)
	if len(st.Trace) > 1 {
		const width = 60
		fmt.Fprintf(stdout, "\npower  %s\n", vasched.Sparkline(st.Trace, func(p vasched.TracePoint) float64 { return p.PowerW }, width))
		fmt.Fprintf(stdout, "MIPS   %s\n", vasched.Sparkline(st.Trace, func(p vasched.TracePoint) float64 { return p.MIPS }, width))
		fmt.Fprintf(stdout, "temp   %s\n", vasched.Sparkline(st.Trace, func(p vasched.TracePoint) float64 { return p.MaxTempC }, width))
	}
	return nil
}
