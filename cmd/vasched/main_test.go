package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestListExperiments pins the -list output: every registered experiment
// id appears, so operators can discover ext-cluster and friends.
func TestListExperiments(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"fig4", "fig11", "table5", "ext-cluster"} {
		if !strings.Contains(out, "\n  "+id+"\n") {
			t.Errorf("-list output missing %q:\n%s", id, out)
		}
	}
}

// TestNoActionPrintsUsage: bare invocation is a usage error, not a run.
func TestNoActionPrintsUsage(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf); err != flag.ErrHelp {
		t.Fatalf("err = %v, want flag.ErrHelp", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("usage path wrote to stdout: %q", buf.String())
	}
}

func TestBadFlagRejected(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestUnknownExperiment: the error names the bad id and nothing is printed.
func TestUnknownExperiment(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-experiment", "fig99"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("err = %v, want mention of fig99", err)
	}
}

// TestUnknownScale: scale validation happens before any die work.
func TestUnknownScale(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-experiment", "fig4", "-scale", "huge"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "huge") {
		t.Fatalf("err = %v, want mention of scale huge", err)
	}
}

// TestRunExperimentQuick runs one real quick-scale experiment through the
// CLI core and checks the report framing.
func TestRunExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full quick-scale experiment")
	}
	var buf strings.Builder
	if err := run([]string{"-experiment", "table5", "-scale", "quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "==== table5 (") || !strings.Contains(out, "Table 5") {
		t.Fatalf("report framing missing:\n%s", out)
	}
}

// TestRunExperimentJSON: -json emits a parseable envelope with the id.
func TestRunExperimentJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full quick-scale experiment")
	}
	var buf strings.Builder
	if err := run([]string{"-experiment", "table5", "-scale", "quick", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"id": "table5"`) || !strings.Contains(out, `"result"`) {
		t.Fatalf("JSON envelope missing fields:\n%s", out)
	}
}

// TestTracedClusteredRun is the single-binary acceptance path: a clustered
// ext-cluster run with fault injection and -trace writes a Chrome
// trace_event file whose span set covers the kernel fan-out and every
// shard dispatch — while the report matches an untraced local run of the
// same experiment byte for byte.
func TestTracedClusteredRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full quick-scale experiment")
	}
	tracePath := filepath.Join(t.TempDir(), "out.json")
	var clustered strings.Builder
	err := run([]string{"-experiment", "ext-cluster", "-scale", "quick",
		"-cluster", "2", "-fault-rate", "0.3", "-fault-seed", "7",
		"-trace", tracePath}, &clustered)
	if err != nil {
		t.Fatal(err)
	}
	var local strings.Builder
	if err := run([]string{"-experiment", "ext-cluster", "-scale", "quick"}, &local); err != nil {
		t.Fatal(err)
	}
	trim := func(s string) string {
		var keep []string
		for _, l := range strings.Split(s, "\n") {
			// Wall-clock in the banner and the trace summary differ by design.
			if strings.HasPrefix(l, "==== ") || strings.HasPrefix(l, "trace: ") {
				continue
			}
			keep = append(keep, l)
		}
		return strings.Join(keep, "\n")
	}
	if trim(clustered.String()) != trim(local.String()) {
		t.Errorf("clustered+faulted run diverges from local:\n--- clustered ---\n%s\n--- local ---\n%s",
			clustered.String(), local.String())
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	names := map[string]int{}
	for _, ev := range chrome.TraceEvents {
		names[ev.Name]++
	}
	for _, want := range []string{"env.kernel", "cluster.run", "cluster.shard", "cluster.dispatch"} {
		if names[want] == 0 {
			t.Errorf("trace missing %q spans (got %v)", want, names)
		}
	}
}

// TestRunScenario drives the -run path on a short simulation and checks
// the report carries the headline statistics.
func TestRunScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a platform simulation")
	}
	var buf strings.Builder
	err := run([]string{"-run", "-threads", "4", "-duration", "20", "-budget", "30"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"throughput", "power", "deviation", "frequency"} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario report missing %q:\n%s", want, out)
		}
	}
}

// TestRunDynamicMode drives the -dynamic path with a horizon sweep and
// checks the epoch table renders.
func TestRunDynamicMode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the scenario engine plus an aged-die rebuild")
	}
	var buf strings.Builder
	err := run([]string{"-dynamic", "-threads", "4", "-duration", "10", "-dt-ms", "2",
		"-mig-penalty", "2", "-horizon", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dynamic scenario", "years", "dVth(mV)", "fmax(GHz)", "migrations"} {
		if !strings.Contains(out, want) {
			t.Errorf("dynamic report missing %q:\n%s", want, out)
		}
	}
	// One row per epoch: fresh + 4-year.
	if n := strings.Count(out, "\n"); n < 5 {
		t.Fatalf("expected epoch rows, got:\n%s", out)
	}
}

// TestRunDynamicBadHorizon pins the flag-parse error path.
func TestRunDynamicBadHorizon(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-dynamic", "-horizon", "3,x"}, &buf); err == nil {
		t.Fatal("malformed -horizon accepted")
	}
}
