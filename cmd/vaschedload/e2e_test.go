package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"vasched/internal/loadsnap"
)

// TestLoadEndToEnd is the harness acceptance test on the real binary:
// a spawned coordinator plus one cluster worker take a mixed-tenant,
// mixed-lane, mixed-experiment run with mid-flight cancels, a quota
// burst sized to guarantee 429s (quota 4 against a 12-job
// single-tenant burst), and an injected SIGKILL-restart at 30% of
// completions — and the run must still pass its SLOs with zero lost
// jobs and a valid capacity snapshot.
func TestLoadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real vaschedd processes")
	}
	out := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{
		"-jobs", "120", "-tenants", "3", "-clients", "16",
		"-seed", "11", "-cancel-frac", "0.08", "-burst-frac", "0.1",
		"-kill-at", "0.3", "-cluster-workers", "1",
		"-max-jobs", "2", "-tenant-quota", "4", "-lane-cap", "64",
		"-timeout", "8m",
		"-slo-client-p99", "60", "-slo-job-p99", "30", "-slo-decide-p99", "5",
		"-out", out, "-date", "2026-01-01",
	}, &buf)
	t.Logf("run output:\n%s", buf.String())
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	snap, err := loadsnap.Read(filepath.Join(out, "LOAD_2026-01-01.json"))
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	c := snap.Counts
	if c.Submitted != 120 {
		t.Fatalf("submitted = %d, want 120", c.Submitted)
	}
	if c.Lost != 0 {
		t.Fatalf("lost = %d, want 0", c.Lost)
	}
	if c.Failed != 0 {
		t.Fatalf("failed = %d, want 0", c.Failed)
	}
	if c.Restarts != 1 {
		t.Fatalf("restarts = %d, want exactly 1 injected crash", c.Restarts)
	}
	if c.Rejected429 == 0 {
		t.Fatal("burst provoked no 429s (quota 4, 12-job single-tenant burst)")
	}
	if c.Cancelled == 0 {
		t.Fatal("no job ended cancelled")
	}
	if c.Done+c.Cancelled != 120 {
		t.Fatalf("terminal = %d done + %d cancelled, want 120", c.Done, c.Cancelled)
	}
	if !snap.SLOPass || snap.MaxSustainedJobsPerSec <= 0 {
		t.Fatalf("SLO pass not recorded: pass=%v cap=%g", snap.SLOPass, snap.MaxSustainedJobsPerSec)
	}
	// The smooth-WRR lanes all won dequeues, and the service histograms
	// actually populated (the quantile estimates are not NaN-backed).
	for _, lane := range []string{"control", "interactive", "batch"} {
		if snap.LaneDequeues[lane] == 0 {
			t.Fatalf("lane %s won no dequeues: %v", lane, snap.LaneDequeues)
		}
	}
	for _, src := range []string{"client", "job", "decide"} {
		if q := snap.Latency[src]; !(q.P99 > 0) {
			t.Fatalf("%s p99 = %g, want positive", src, q.P99)
		}
	}
	if !strings.Contains(buf.String(), "1 restart(s)") {
		t.Fatalf("report does not mention the injected restart:\n%s", buf.String())
	}
}
