package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"vasched/internal/loadsnap"
)

func TestBuildMixDeterministic(t *testing.T) {
	a := buildMix(42, 500, 3, 0.03, 0.04)
	b := buildMix(42, 500, 3, 0.03, 0.04)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different mixes")
	}
	c := buildMix(43, 500, 3, 0.03, 0.04)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical mixes")
	}

	sum := mixSummary(a)
	if sum["exp:table5"] < 200 {
		t.Fatalf("table5 should dominate the mix, got %d/500", sum["exp:table5"])
	}
	if sum["burst"] != 20 {
		t.Fatalf("burst = %d, want 4%% of 500 = 20", sum["burst"])
	}
	if sum["cancel"] == 0 {
		t.Fatal("no cancels planned at cancel-frac 0.03")
	}
	for _, lane := range []string{"control", "interactive", "batch"} {
		if sum["lane:"+lane] == 0 {
			t.Fatalf("lane %s absent from the mix: %v", lane, sum)
		}
	}
	for i := 0; i < 3; i++ {
		if sum[fmt.Sprintf("tenant-%d", i)] == 0 && sum[fmt.Sprintf("tenant:tenant-%d", i)] == 0 {
			t.Fatalf("tenant-%d absent from the mix: %v", i, sum)
		}
	}
	// The burst tail is contiguous and single-tenant by design.
	for i := len(a) - 20; i < len(a); i++ {
		s := a[i]
		if !s.Burst || s.Tenant != "tenant-0" || s.Experiment != "table5" || s.Cancel {
			t.Fatalf("burst spec %d = %+v", i, s)
		}
	}
}

// stubJob is one job in the stub coordinator.
type stubJob struct {
	id        uint64
	status    string
	polls     int
	cancelled bool
}

// stubServer is a minimal in-process vaschedd lookalike: jobs flip to
// done after two polls (or cancelled if a DELETE landed first), the
// list endpoint paginates newest-first with the strict ?after cursor,
// and /metrics serves a fixed exposition.
type stubServer struct {
	mu     sync.Mutex
	jobs   map[uint64]*stubJob
	nextID uint64
	// reject429 makes the first N submits answer 429 + Retry-After.
	reject429 int
	// lieInList reports every job as "queued" in GET /v1/jobs even when
	// its own GET says done — the shape of a lost-on-replay bug the
	// zero-lost sweep must catch.
	lieInList bool
	// decideP99High serves a decide histogram whose p99 lands near 4s.
	decideP99High bool
}

func (st *stubServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		defer st.mu.Unlock()
		if st.reject429 > 0 {
			st.reject429--
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"quota"}`)
			return
		}
		var req struct {
			Experiment string `json:"experiment"`
			Lane       string `json:"lane"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Experiment == "" {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		st.nextID++
		st.jobs[st.nextID] = &stubJob{id: st.nextID, status: "queued"}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":%d}`, st.nextID)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, _ := strconv.ParseUint(r.PathValue("id"), 10, 64)
		st.mu.Lock()
		defer st.mu.Unlock()
		j, ok := st.jobs[id]
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		j.polls++
		if j.status == "queued" && j.polls >= 2 {
			if j.cancelled {
				j.status = "cancelled"
			} else {
				j.status = "done"
			}
		}
		fmt.Fprintf(w, `{"id":%d,"status":%q}`, j.id, j.status)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, _ := strconv.ParseUint(r.PathValue("id"), 10, 64)
		st.mu.Lock()
		defer st.mu.Unlock()
		if j, ok := st.jobs[id]; ok && j.status == "queued" {
			j.cancelled = true
		}
		fmt.Fprint(w, `{}`)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		limit := 100
		if q := r.URL.Query().Get("limit"); q != "" {
			limit, _ = strconv.Atoi(q)
		}
		var after uint64
		if q := r.URL.Query().Get("after"); q != "" {
			n, err := strconv.ParseUint(q, 10, 64)
			if err != nil || n == 0 {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			st.mu.Lock()
			_, ok := st.jobs[n]
			st.mu.Unlock()
			if !ok {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			after = n
		}
		st.mu.Lock()
		ids := make([]uint64, 0, len(st.jobs))
		for id := range st.jobs {
			if after == 0 || id < after {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] > ids[j] })
		if len(ids) > limit {
			ids = ids[:limit]
		}
		var buf bytes.Buffer
		buf.WriteString("[")
		for i, id := range ids {
			if i > 0 {
				buf.WriteString(",")
			}
			status := st.jobs[id].status
			if st.lieInList {
				status = "queued"
			}
			fmt.Fprintf(&buf, `{"id":%d,"status":%q}`, id, status)
		}
		buf.WriteString("]")
		st.mu.Unlock()
		w.Write(buf.Bytes())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		decideBig := 0
		if st.decideP99High {
			decideBig = 100
		}
		fmt.Fprintf(w, `# TYPE vaschedd_job_seconds histogram
vaschedd_job_seconds_bucket{experiment="table5",le="0.064"} 80
vaschedd_job_seconds_bucket{experiment="table5",le="0.256"} 95
vaschedd_job_seconds_bucket{experiment="table5",le="1.024"} 100
vaschedd_job_seconds_bucket{experiment="table5",le="+Inf"} 100
vaschedd_job_seconds_sum{experiment="table5"} 9.5
vaschedd_job_seconds_count{experiment="table5"} 100
# TYPE vaschedd_decide_seconds histogram
vaschedd_decide_seconds_bucket{experiment="table5",le="0.004"} 100
vaschedd_decide_seconds_bucket{experiment="table5",le="4.096"} %d
vaschedd_decide_seconds_bucket{experiment="table5",le="+Inf"} %d
vaschedd_decide_seconds_sum{experiment="table5"} 0.2
vaschedd_decide_seconds_count{experiment="table5"} %d
# TYPE vaschedd_lane_dequeues_total counter
vaschedd_lane_dequeues_total{lane="control"} 16
vaschedd_lane_dequeues_total{lane="interactive"} 4
vaschedd_lane_dequeues_total{lane="batch"} 1
# TYPE vaschedd_lane_depth gauge
vaschedd_lane_depth{lane="control"} 0
vaschedd_lane_depth{lane="interactive"} 2
vaschedd_lane_depth{lane="batch"} 5
`, 100+decideBig, 100+decideBig, 100+decideBig)
	})
	return mux
}

func newStub() (*stubServer, *httptest.Server) {
	st := &stubServer{jobs: map[uint64]*stubJob{}}
	return st, httptest.NewServer(st.handler())
}

// baseArgs are the -target flags shared by the stub-driven tests: a
// small mix, no crash injection, tight but passable SLOs.
func baseArgs(url string, extra ...string) []string {
	args := []string{
		"-target", url,
		"-jobs", "60", "-tenants", "3", "-clients", "8",
		"-seed", "7", "-cancel-frac", "0.05", "-burst-frac", "0.05",
		"-timeout", "30s",
		"-slo-client-p99", "10", "-slo-job-p99", "5", "-slo-decide-p99", "1",
		"-date", "2026-08-08",
	}
	return append(args, extra...)
}

func TestRunAgainstStubPassesAndWritesSnapshot(t *testing.T) {
	st, srv := newStub()
	defer srv.Close()
	st.reject429 = 5
	out := t.TempDir()

	var buf bytes.Buffer
	if err := run(baseArgs(srv.URL, "-out", out), &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "SLO PASS") {
		t.Fatalf("no SLO PASS in output:\n%s", buf.String())
	}
	// -target disables kill-at even though its default is 0.4.
	if !strings.Contains(buf.String(), "disabling -kill-at") {
		t.Fatalf("kill-at not disabled under -target:\n%s", buf.String())
	}

	snap, err := loadsnap.Read(filepath.Join(out, "LOAD_2026-08-08.json"))
	if err != nil {
		t.Fatalf("snapshot unreadable: %v", err)
	}
	if snap.Counts.Submitted != 60 {
		t.Fatalf("submitted = %d, want 60", snap.Counts.Submitted)
	}
	if snap.Counts.Done+snap.Counts.Cancelled != 60 {
		t.Fatalf("terminal = %d done + %d cancelled, want 60", snap.Counts.Done, snap.Counts.Cancelled)
	}
	if snap.Counts.Cancelled == 0 {
		t.Fatal("no cancellations landed")
	}
	if snap.Counts.Rejected429 != 5 {
		t.Fatalf("rejected429 = %d, want 5", snap.Counts.Rejected429)
	}
	if !snap.SLOPass || snap.MaxSustainedJobsPerSec <= 0 {
		t.Fatalf("SLO pass not recorded: %+v", snap)
	}
	// Service-side quantiles came from the stub's histogram: p50 in the
	// first bucket, p99 in the third.
	if q := snap.Latency["job"]; q.P50 > 0.064 || q.P99 <= 0.256 || q.P99 > 1.024 {
		t.Fatalf("job quantiles = %+v", q)
	}
	if got := snap.LaneDequeues["control"]; got != 16 {
		t.Fatalf("lane dequeues = %+v", snap.LaneDequeues)
	}
	if snap.Fingerprint() == "" {
		t.Fatal("empty fingerprint")
	}
}

func TestRunFailsSLOAndSkipsSnapshot(t *testing.T) {
	st, srv := newStub()
	defer srv.Close()
	st.decideP99High = true // decide p99 ≈ 4s against a 1s SLO
	out := t.TempDir()

	var buf bytes.Buffer
	err := run(baseArgs(srv.URL, "-out", out), &buf)
	if err == nil || !strings.Contains(err.Error(), "SLO gate failed") {
		t.Fatalf("err = %v, want SLO gate failure", err)
	}
	if !strings.Contains(err.Error(), "decide p99") {
		t.Fatalf("violation should name decide p99: %v", err)
	}
	if got := loadsnap.Latest(out); got != "" {
		t.Fatalf("failing run wrote a snapshot: %s", got)
	}
}

func TestRunDetectsLostJobs(t *testing.T) {
	st, srv := newStub()
	defer srv.Close()
	st.lieInList = true // listing contradicts per-job status: lost-on-replay shape

	var buf bytes.Buffer
	err := run(baseArgs(srv.URL), &buf)
	if err == nil || !strings.Contains(err.Error(), "lost") {
		t.Fatalf("err = %v, want lost-job violation", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-jobs", "0"}, &buf); err == nil {
		t.Fatal("-jobs 0 accepted")
	}
	if err := run([]string{"stray"}, &buf); err == nil {
		t.Fatal("stray positional argument accepted")
	}
	if err := run([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestEvalSLO(t *testing.T) {
	s := &loadsnap.Snapshot{
		SLO:     loadsnap.SLO{ClientP99: 1, JobP99: 1, DecideP99: 1},
		Latency: map[string]loadsnap.Quantiles{"client": {P99: 0.5}, "job": {P99: 0.5}, "decide": {P99: 0.5}},
	}
	if v := evalSLO(s, nil); len(v) != 0 {
		t.Fatalf("healthy run violated: %v", v)
	}
	s.Latency["job"] = loadsnap.Quantiles{P99: 2}
	if v := evalSLO(s, nil); len(v) != 1 || !strings.Contains(v[0], "job p99") {
		t.Fatalf("violations = %v", v)
	}
	s.Counts.Failed = 2
	if v := evalSLO(s, []uint64{9}); len(v) != 3 {
		t.Fatalf("violations = %v", v)
	}
	// Disabled thresholds (zero) never fire.
	s = &loadsnap.Snapshot{Latency: map[string]loadsnap.Quantiles{"client": {P99: 999}}}
	if v := evalSLO(s, nil); len(v) != 0 {
		t.Fatalf("disabled SLO fired: %v", v)
	}
}
