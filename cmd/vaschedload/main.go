// Command vaschedload is the load-test harness and SLO gate for
// vaschedd: it drives a real coordinator (spawned, with an optional
// worker fleet — or an existing one via -target) with a seeded
// mixed-tenant workload across the three priority lanes and a spread of
// cheap and heavy experiments, spiced with mid-flight cancellations, a
// quota-burst phase that provokes 429 + Retry-After backpressure, and
// an injected SIGKILL-restart that exercises crash recovery under live
// client traffic.
//
// When the run drains it sweeps the paginated job list to prove no
// accepted job was lost, scrapes /metrics, estimates service-side
// p50/p95/p99 from the vaschedd_job_seconds and vaschedd_decide_seconds
// histogram buckets, computes exact client-side submit→terminal
// percentiles, and asserts the configured SLO thresholds — exiting
// non-zero on any violation, a failed job, or a lost job. With -out it
// writes a host-fingerprinted LOAD_<date>.json capacity snapshot that
// cmd/benchstatus -load gates >20% capacity regressions against.
//
// Usage:
//
//	vaschedload [-jobs 1000] [-tenants 3] [-clients 16] [-seed 42]
//	            [-scale quick] [-rate-hz 0] [-cancel-frac 0.03]
//	            [-burst-frac 0.04] [-kill-at 0.4] [-cluster-workers 0]
//	            [-max-jobs 2] [-tenant-quota 16] [-lane-cap 64]
//	            [-timeout 10m] [-out DIR] [-date YYYY-MM-DD]
//	            [-slo-client-p50 0] [-slo-client-p99 30]
//	            [-slo-job-p99 10] [-slo-decide-p99 1]
//	            [-target URL]
//
// The workload is a pure function of (-seed, -jobs, -tenants,
// -cancel-frac, -burst-frac): a failing run replays exactly from its
// seed. -target skips spawning (and disables -kill-at, which needs
// process control); SLO thresholds of 0 disable that assertion.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"vasched/internal/loadsnap"
	"vasched/internal/metrics"
)

type runConfig struct {
	jobs, tenants, clients        int
	seed                          int64
	scale                         string
	rateHz                        float64
	cancelFrac, burstFrac, killAt float64
	clusterWorkers                int
	maxJobs, tenantQuota, laneCap int
	timeout                       time.Duration
	target, out, date             string
	slo                           loadsnap.SLO
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vaschedload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("vaschedload", flag.ContinueOnError)
	var cfg runConfig
	fs.IntVar(&cfg.jobs, "jobs", 1000, "total jobs in the mix")
	fs.IntVar(&cfg.tenants, "tenants", 3, "tenants the mix spreads across")
	fs.IntVar(&cfg.clients, "clients", 16, "concurrent closed-loop clients")
	fs.Int64Var(&cfg.seed, "seed", 42, "workload mix seed (same seed, same mix)")
	fs.StringVar(&cfg.scale, "scale", "quick", "experiment scale submitted with every job")
	fs.Float64Var(&cfg.rateHz, "rate-hz", 0, "open-loop submit rate; 0 runs pure closed-loop")
	fs.Float64Var(&cfg.cancelFrac, "cancel-frac", 0.03, "fraction of jobs cancelled mid-flight")
	fs.Float64Var(&cfg.burstFrac, "burst-frac", 0.04, "fraction of jobs slammed at one tenant to provoke 429s")
	fs.Float64Var(&cfg.killAt, "kill-at", 0.4, "SIGKILL+restart the coordinator when this fraction of jobs is terminal; 0 disables")
	fs.IntVar(&cfg.clusterWorkers, "cluster-workers", 0, "spawned cluster worker processes")
	fs.IntVar(&cfg.maxJobs, "max-jobs", 2, "coordinator -max-jobs (spawn mode)")
	fs.IntVar(&cfg.tenantQuota, "tenant-quota", 16, "coordinator -tenant-quota (spawn mode)")
	fs.IntVar(&cfg.laneCap, "lane-cap", 64, "coordinator -lane-cap (spawn mode)")
	fs.DurationVar(&cfg.timeout, "timeout", 10*time.Minute, "whole-run deadline")
	fs.StringVar(&cfg.target, "target", "", "existing coordinator base URL; empty spawns a fresh topology")
	fs.StringVar(&cfg.out, "out", "", "directory to write the LOAD_<date>.json snapshot into; empty skips")
	fs.StringVar(&cfg.date, "date", "", "snapshot date (default today, ISO-8601)")
	fs.Float64Var(&cfg.slo.ClientP50, "slo-client-p50", 0, "client p50 SLO seconds; 0 disables")
	fs.Float64Var(&cfg.slo.ClientP99, "slo-client-p99", 30, "client p99 SLO seconds; 0 disables")
	fs.Float64Var(&cfg.slo.JobP99, "slo-job-p99", 10, "service job p99 SLO seconds; 0 disables")
	fs.Float64Var(&cfg.slo.DecideP99, "slo-decide-p99", 1, "scheduler decide p99 SLO seconds; 0 disables")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.jobs <= 0 || cfg.tenants <= 0 || cfg.clients <= 0 {
		return fmt.Errorf("-jobs, -tenants and -clients must be positive")
	}
	if cfg.date == "" {
		cfg.date = time.Now().Format("2006-01-02")
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()

	// Topology: attach to -target, or spawn coordinator (+workers).
	var cl *cluster
	tgt := newTarget(cfg.target)
	if cfg.target == "" {
		workDir, err := os.MkdirTemp("", "vaschedload-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(workDir)
		fmt.Fprintf(stdout, "vaschedload: building vaschedd and spawning coordinator (+%d workers)\n", cfg.clusterWorkers)
		if cl, err = startCluster(cfg, workDir); err != nil {
			return err
		}
		defer cl.stop()
		tgt.set(cl.coord.url)
	} else if cfg.killAt > 0 {
		fmt.Fprintln(stdout, "vaschedload: -target set: disabling -kill-at (needs process control)")
		cfg.killAt = 0
	}

	specs := buildMix(cfg.seed, cfg.jobs, cfg.tenants, cfg.cancelFrac, cfg.burstFrac)
	sum := mixSummary(specs)
	fmt.Fprintf(stdout, "vaschedload: %d jobs, %d tenants, %d clients, seed %d (%s)\n",
		cfg.jobs, cfg.tenants, cfg.clients, cfg.seed, summaryLine(sum, "exp:"))
	fmt.Fprintf(stdout, "vaschedload: lanes %s, cancels %d, burst %d, kill-at %.0f%%\n",
		summaryLine(sum, "lane:"), sum["cancel"], sum["burst"], cfg.killAt*100)

	d := newDriver(cfg, tgt)
	sampleCtx, stopSampling := context.WithCancel(ctx)
	go d.sampleDepths(sampleCtx, 500*time.Millisecond)
	if cfg.killAt > 0 && cl != nil {
		go d.injectCrash(ctx, cl, cfg.killAt, cfg.jobs)
	}

	start := time.Now()
	driveErr := d.drive(ctx, specs)
	elapsed := time.Since(start)
	stopSampling()
	if driveErr != nil {
		return driveErr
	}

	// Zero-lost sweep: every accepted ID must be terminal in the
	// paginated listing, across any injected crash.
	lost, err := d.sweepLost(ctx)
	if err != nil {
		return fmt.Errorf("lost-job sweep: %w", err)
	}

	// Service-side percentiles from the final scrape.
	sc, err := d.scrape(ctx)
	if err != nil {
		return fmt.Errorf("final metrics scrape: %w", err)
	}
	latency := map[string]loadsnap.Quantiles{"client": d.tally.quantiles()}
	for family, key := range map[string]string{
		"vaschedd_job_seconds":    "job",
		"vaschedd_decide_seconds": "decide",
	} {
		if h, ok := sc.Histogram(family); ok {
			latency[key] = loadsnap.Quantiles{
				P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			}
		}
	}
	laneDequeues := map[string]int64{}
	for labels, v := range sc.Series("vaschedd_lane_dequeues_total") {
		if lane, ok := metrics.LabelValue(labels, "lane"); ok {
			laneDequeues[lane] = int64(v)
		}
	}

	snap := &loadsnap.Snapshot{
		Date: cfg.date, GoVersion: runtime.Version(),
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Seed: cfg.seed, Jobs: cfg.jobs, Tenants: cfg.tenants, Clients: cfg.clients,
		ClusterWorkers: cfg.clusterWorkers, RateHz: cfg.rateHz,
		DurationSec: elapsed.Seconds(),
		SLO:         cfg.slo,
		Latency:     latency,
		Counts: loadsnap.Counts{
			Submitted:   d.tally.submitted.Load(),
			Done:        d.tally.done.Load(),
			Cancelled:   d.tally.cancelled.Load(),
			Failed:      d.tally.failed.Load(),
			Rejected429: d.tally.rejected429.Load(),
			Retries:     d.tally.retries.Load(),
			Restarts:    d.tally.restarts.Load(),
			Lost:        int64(len(lost)),
		},
		LaneDequeues: laneDequeues,
	}
	d.depthMu.Lock()
	snap.QueueDepth = append([]int(nil), d.depth...)
	snap.LaneDepth = map[string][]int{}
	for lane, s := range d.laneDepth {
		snap.LaneDepth[lane] = append([]int(nil), s...)
	}
	d.depthMu.Unlock()
	terminal := snap.Counts.Done + snap.Counts.Cancelled + snap.Counts.Failed
	if elapsed > 0 {
		snap.JobsPerSec = float64(terminal) / elapsed.Seconds()
	}

	violations := evalSLO(snap, lost)
	snap.SLOPass = len(violations) == 0
	if snap.SLOPass {
		snap.MaxSustainedJobsPerSec = snap.JobsPerSec
	}

	report(stdout, snap, violations)

	if cfg.out != "" && snap.SLOPass {
		path := filepath.Join(cfg.out, "LOAD_"+cfg.date+".json")
		if err := snap.Write(path); err != nil {
			return fmt.Errorf("write snapshot: %w", err)
		}
		fmt.Fprintf(stdout, "vaschedload: wrote %s (fingerprint %s)\n", path, snap.Fingerprint())
	}
	if len(violations) > 0 {
		return fmt.Errorf("SLO gate failed: %s", strings.Join(violations, "; "))
	}
	return nil
}

// evalSLO checks the hard invariants (nothing lost, nothing failed, the
// fault mix actually fired) and every configured latency threshold.
func evalSLO(s *loadsnap.Snapshot, lost []uint64) []string {
	var v []string
	if n := len(lost); n > 0 {
		show := lost
		if len(show) > 8 {
			show = show[:8]
		}
		v = append(v, fmt.Sprintf("%d accepted job(s) lost or non-terminal (e.g. %v)", n, show))
	}
	if s.Counts.Failed > 0 {
		v = append(v, fmt.Sprintf("%d job(s) failed", s.Counts.Failed))
	}
	check := func(name string, got, want float64) {
		if want > 0 && got > want {
			v = append(v, fmt.Sprintf("%s %.3fs > %.3fs", name, got, want))
		}
	}
	check("client p50", s.Latency["client"].P50, s.SLO.ClientP50)
	check("client p99", s.Latency["client"].P99, s.SLO.ClientP99)
	check("job p99", s.Latency["job"].P99, s.SLO.JobP99)
	check("decide p99", s.Latency["decide"].P99, s.SLO.DecideP99)
	return v
}

// report renders the human summary.
func report(w io.Writer, s *loadsnap.Snapshot, violations []string) {
	c := s.Counts
	fmt.Fprintf(w, "vaschedload: %d submitted: %d done, %d cancelled, %d failed; %d 429s, %d retries, %d restart(s), %d lost\n",
		c.Submitted, c.Done, c.Cancelled, c.Failed, c.Rejected429, c.Retries, c.Restarts, c.Lost)
	for _, src := range []string{"client", "job", "decide"} {
		if q, ok := s.Latency[src]; ok {
			fmt.Fprintf(w, "vaschedload: %-6s p50/p95/p99 = %.3fs / %.3fs / %.3fs\n", src, q.P50, q.P95, q.P99)
		}
	}
	if len(s.LaneDequeues) > 0 {
		var lanes []string
		for lane := range s.LaneDequeues {
			lanes = append(lanes, lane)
		}
		sort.Strings(lanes)
		parts := make([]string, len(lanes))
		for i, lane := range lanes {
			parts[i] = fmt.Sprintf("%s %d", lane, s.LaneDequeues[lane])
		}
		fmt.Fprintf(w, "vaschedload: lane dequeues (weights %s): %s\n", laneWeightString(), strings.Join(parts, ", "))
	}
	fmt.Fprintf(w, "vaschedload: %.1f jobs/s over %.1fs\n", s.JobsPerSec, s.DurationSec)
	if len(violations) == 0 {
		fmt.Fprintln(w, "vaschedload: SLO PASS")
		return
	}
	for _, v := range violations {
		fmt.Fprintf(w, "vaschedload: SLO VIOLATION: %s\n", v)
	}
}

// summaryLine renders the mix tallies sharing a prefix, sorted by count
// descending, e.g. "table5 580, sann 220, ...".
func summaryLine(sum map[string]int, prefix string) string {
	type kv struct {
		k string
		v int
	}
	var items []kv
	for k, v := range sum {
		if strings.HasPrefix(k, prefix) {
			items = append(items, kv{strings.TrimPrefix(k, prefix), v})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].v != items[j].v {
			return items[i].v > items[j].v
		}
		return items[i].k < items[j].k
	})
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = fmt.Sprintf("%s %d", it.k, it.v)
	}
	return strings.Join(parts, ", ")
}
