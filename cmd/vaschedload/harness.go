package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vasched/internal/loadsnap"
	"vasched/internal/metrics"
	"vasched/internal/tenant"
)

// pollInterval is the client-side status poll period. Coarse enough to
// keep 16 pollers from drowning a 1-CPU coordinator, fine enough that
// poll quantisation stays small next to real job latency.
const pollInterval = 25 * time.Millisecond

// retryCap bounds every backoff sleep (Retry-After hints included) so a
// conservative server hint cannot stall the burst phase.
const retryCap = 500 * time.Millisecond

// target is the coordinator base URL, swappable mid-run: the restart
// injector replaces it after SIGKILL+relaunch lands on a fresh
// ephemeral port, and every in-flight client picks up the new URL on
// its next attempt.
type target struct{ url atomic.Value }

func newTarget(url string) *target {
	t := &target{}
	t.url.Store(strings.TrimRight(url, "/"))
	return t
}

func (t *target) get() string    { return t.url.Load().(string) }
func (t *target) set(url string) { t.url.Store(strings.TrimRight(url, "/")) }

// tally is the run's shared scoreboard.
type tally struct {
	submitted, done, cancelled, failed atomic.Int64
	rejected429, retries, restarts     atomic.Int64

	mu        sync.Mutex
	clientLat []float64 // submit→terminal seconds, client clock
	accepted  []uint64  // every job ID the server answered 202 for
}

func (ta *tally) record(id uint64) {
	ta.mu.Lock()
	ta.accepted = append(ta.accepted, id)
	ta.mu.Unlock()
	ta.submitted.Add(1)
}

func (ta *tally) observe(sec float64) {
	ta.mu.Lock()
	ta.clientLat = append(ta.clientLat, sec)
	ta.mu.Unlock()
}

// quantiles computes exact client-side percentiles (nearest-rank on the
// sorted sample — no estimation needed when every latency is on hand).
func (ta *tally) quantiles() loadsnap.Quantiles {
	ta.mu.Lock()
	lat := append([]float64(nil), ta.clientLat...)
	ta.mu.Unlock()
	if len(lat) == 0 {
		return loadsnap.Quantiles{}
	}
	sort.Float64s(lat)
	at := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	return loadsnap.Quantiles{P50: at(0.50), P95: at(0.95), P99: at(0.99)}
}

// driver runs the planned mix against the target coordinator.
type driver struct {
	cfg   runConfig
	tgt   *target
	httpc *http.Client
	tally tally

	// terminals counts jobs that reached a terminal state — the restart
	// injector triggers on it.
	terminals atomic.Int64

	// depths accumulates the sampled queue-depth series.
	depthMu   sync.Mutex
	depth     []int
	laneDepth map[string][]int
}

func newDriver(cfg runConfig, tgt *target) *driver {
	return &driver{
		cfg:       cfg,
		tgt:       tgt,
		httpc:     &http.Client{Timeout: 30 * time.Second},
		laneDepth: map[string][]int{},
	}
}

// do issues one request with the tenant header, retrying transport
// errors (the coordinator is mid-restart) until ctx expires.
func (d *driver) do(ctx context.Context, method, path, ten string, body []byte) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, d.tgt.get()+path, rd)
		if err != nil {
			return nil, err
		}
		if ten != "" {
			req.Header.Set("X-Tenant", ten)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := d.httpc.Do(req)
		if err == nil {
			return resp, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Transport error: the coordinator is restarting (or not up
		// yet). Back off and retry against whatever URL is current.
		d.tally.retries.Add(1)
		sleepCtx(ctx, backoff(attempt))
	}
}

// backoff is the transport-retry schedule: 25ms doubling to retryCap.
func backoff(attempt int) time.Duration {
	dur := 25 * time.Millisecond << uint(min(attempt, 6))
	if dur > retryCap {
		dur = retryCap
	}
	return dur
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// submit POSTs one job, absorbing 429 backpressure (honouring
// Retry-After up to retryCap) and 503 drain windows until the job is
// accepted or ctx expires.
func (d *driver) submit(ctx context.Context, spec jobSpec) (uint64, error) {
	body := map[string]any{
		"experiment": spec.Experiment,
		"scale":      d.cfg.scale,
		"lane":       spec.Lane,
	}
	if spec.Adaptive {
		body["adaptive"] = map[string]any{"metric": "power-ratio"}
	}
	buf, _ := json.Marshal(body)
	for {
		resp, err := d.do(ctx, http.MethodPost, "/v1/jobs", spec.Tenant, buf)
		if err != nil {
			return 0, err
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var v struct {
				ID uint64 `json:"id"`
			}
			err := json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil {
				return 0, fmt.Errorf("decode submit response: %v", err)
			}
			return v.ID, nil
		case http.StatusTooManyRequests:
			d.tally.rejected429.Add(1)
			wait := retryCap
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra >= 0 {
				if hinted := time.Duration(ra) * time.Second; hinted < wait {
					wait = hinted
				}
			}
			if wait < 50*time.Millisecond {
				wait = 50 * time.Millisecond
			}
			resp.Body.Close()
			sleepCtx(ctx, wait)
		case http.StatusServiceUnavailable:
			// Draining or fenced: the restart injector is mid-swap.
			d.tally.retries.Add(1)
			resp.Body.Close()
			sleepCtx(ctx, retryCap)
		default:
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return 0, fmt.Errorf("submit %s: HTTP %d: %s", spec.Experiment, resp.StatusCode, bytes.TrimSpace(raw))
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
	}
}

// jobStatus fetches one job's current status string.
func (d *driver) jobStatus(ctx context.Context, id uint64) (string, error) {
	resp, err := d.do(ctx, http.MethodGet, fmt.Sprintf("/v1/jobs/%d", id), "", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("job %d: HTTP %d", id, resp.StatusCode)
	}
	var v struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return "", err
	}
	return v.Status, nil
}

// cancel fires a DELETE; best-effort (the job may already be terminal).
func (d *driver) cancel(ctx context.Context, id uint64) {
	resp, err := d.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/jobs/%d", id), "", nil)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// runSpec drives one job through its full life: submit, optional
// mid-flight cancel, poll to terminal, tally the outcome.
func (d *driver) runSpec(ctx context.Context, spec jobSpec) error {
	start := time.Now()
	id, err := d.submit(ctx, spec)
	if err != nil {
		return err
	}
	d.tally.record(id)
	if spec.Cancel {
		d.cancel(ctx, id)
	}
	for {
		st, err := d.jobStatus(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			d.tally.retries.Add(1)
			sleepCtx(ctx, backoff(0))
			continue
		}
		switch st {
		case "done":
			d.tally.done.Add(1)
		case "cancelled":
			d.tally.cancelled.Add(1)
		case "failed":
			d.tally.failed.Add(1)
		default:
			sleepCtx(ctx, pollInterval)
			continue
		}
		d.tally.observe(time.Since(start).Seconds())
		d.terminals.Add(1)
		return nil
	}
}

// drive pushes the whole mix through the client pool: the steady phase
// runs closed-loop (optionally paced by rateHz), then the burst tail is
// thrown at one tenant back-to-back to provoke quota 429s.
func (d *driver) drive(ctx context.Context, specs []jobSpec) error {
	steady, burst := specs, []jobSpec(nil)
	for i, s := range specs {
		if s.Burst {
			steady, burst = specs[:i], specs[i:]
			break
		}
	}

	var gate <-chan time.Time
	if d.cfg.rateHz > 0 {
		tick := time.NewTicker(time.Duration(float64(time.Second) / d.cfg.rateHz))
		defer tick.Stop()
		gate = tick.C
	}

	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		if err == nil || ctx.Err() != nil {
			return
		}
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	pool := func(specs []jobSpec, clients int, paced bool) {
		idx := make(chan jobSpec)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for spec := range idx {
					if paced && gate != nil {
						select {
						case <-gate:
						case <-ctx.Done():
							return
						}
					}
					fail(d.runSpec(ctx, spec))
				}
			}()
		}
		for _, s := range specs {
			select {
			case idx <- s:
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		}
		close(idx)
		wg.Wait()
	}

	pool(steady, d.cfg.clients, true)
	if len(burst) > 0 {
		// The burst pool is wider than the steady pool and never paced:
		// its whole point is to slam one tenant's quota and prove the
		// 429 + Retry-After path under the run's SLO clock.
		clients := d.cfg.clients * 2
		if clients > len(burst) {
			clients = len(burst)
		}
		pool(burst, clients, false)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("run timed out: %w", err)
	}
	errMu.Lock()
	defer errMu.Unlock()
	return firstErr
}

// sampleDepths scrapes lane-depth gauges until ctx is cancelled.
func (d *driver) sampleDepths(ctx context.Context, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		sc, err := d.scrape(ctx)
		if err != nil {
			continue // mid-restart: skip the sample
		}
		total := 0
		perLane := map[string]int{}
		for labels, v := range sc.Series("vaschedd_lane_depth") {
			lane, ok := metrics.LabelValue(labels, "lane")
			if !ok {
				continue
			}
			perLane[lane] = int(v)
			total += int(v)
		}
		d.depthMu.Lock()
		d.depth = append(d.depth, total)
		for lane, v := range perLane {
			d.laneDepth[lane] = append(d.laneDepth[lane], v)
		}
		d.depthMu.Unlock()
	}
}

// scrape fetches and parses /metrics once.
func (d *driver) scrape(ctx context.Context) (*metrics.Scrape, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.tgt.get()+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := d.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return metrics.ParseExposition(string(raw))
}

// sweepLost paginates the full job list through the ?after cursor and
// returns the accepted IDs that are missing or non-terminal — the
// zero-lost acceptance check after injected crashes.
func (d *driver) sweepLost(ctx context.Context) ([]uint64, error) {
	status := map[uint64]string{}
	after := uint64(0)
	for {
		path := "/v1/jobs?limit=200"
		if after > 0 {
			path += fmt.Sprintf("&after=%d", after)
		}
		resp, err := d.do(ctx, http.MethodGet, path, "", nil)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return nil, fmt.Errorf("list after=%d: HTTP %d: %s", after, resp.StatusCode, bytes.TrimSpace(raw))
		}
		var page []struct {
			ID     uint64 `json:"id"`
			Status string `json:"status"`
		}
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if len(page) == 0 {
			break
		}
		for _, j := range page {
			status[j.ID] = j.Status
		}
		after = page[len(page)-1].ID // newest-first: the page's last ID is its lowest
		if after <= 1 {
			break
		}
	}

	d.tally.mu.Lock()
	accepted := append([]uint64(nil), d.tally.accepted...)
	d.tally.mu.Unlock()
	var lost []uint64
	for _, id := range accepted {
		switch status[id] {
		case "done", "cancelled", "failed":
		default:
			lost = append(lost, id)
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	return lost, nil
}

// --- process management (spawn mode) ---

// proc is one spawned vaschedd process (coordinator or worker).
type proc struct {
	cmd *exec.Cmd
	url string
}

func (p *proc) kill() {
	if p != nil && p.cmd.Process != nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}

// cluster is the spawned topology: one coordinator (replaceable across
// injected crashes) plus a fixed worker fleet.
type cluster struct {
	bin       string
	dataDir   string
	coordArgs []string
	coord     *proc
	workers   []*proc
}

// buildBinary compiles cmd/vaschedd into dir.
func buildBinary(dir string) (string, error) {
	bin := filepath.Join(dir, "vaschedd")
	cmd := exec.Command("go", "build", "-o", bin, "vasched/cmd/vaschedd")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("go build vaschedd: %v\n%s", err, out)
	}
	return bin, nil
}

// startProc launches bin with args and parses the bound address from
// the stderr line beginning with prefix. Stderr keeps draining in the
// background so the child never blocks on a full pipe.
func startProc(bin string, args []string, prefix string, timeout time.Duration) (*proc, error) {
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), prefix); ok {
				addr, _, _ := strings.Cut(rest, " ")
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &proc{cmd: cmd, url: "http://" + addr}, nil
	case <-time.After(timeout):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("%s %v: no %q line within %v", bin, args, prefix, timeout)
	}
}

// startCluster spawns the worker fleet, then a coordinator wired to it.
func startCluster(cfg runConfig, workDir string) (*cluster, error) {
	bin, err := buildBinary(workDir)
	if err != nil {
		return nil, err
	}
	cl := &cluster{bin: bin, dataDir: filepath.Join(workDir, "data")}
	if err := os.MkdirAll(cl.dataDir, 0o755); err != nil {
		return nil, err
	}
	var workerURLs []string
	for i := 0; i < cfg.clusterWorkers; i++ {
		w, err := startProc(bin, []string{"-worker", "-addr", "127.0.0.1:0", "-parallel", "1"},
			"vaschedd: worker listening on ", 30*time.Second)
		if err != nil {
			cl.stop()
			return nil, err
		}
		cl.workers = append(cl.workers, w)
		workerURLs = append(workerURLs, w.url)
	}
	cl.coordArgs = []string{
		"-addr", "127.0.0.1:0",
		"-data-dir", cl.dataDir,
		"-max-jobs", strconv.Itoa(cfg.maxJobs),
		"-tenant-quota", strconv.Itoa(cfg.tenantQuota),
		"-lane-cap", strconv.Itoa(cfg.laneCap),
		"-drain", "5s",
	}
	if len(workerURLs) > 0 {
		cl.coordArgs = append(cl.coordArgs, "-workers", strings.Join(workerURLs, ","))
	}
	if err := cl.startCoord(); err != nil {
		cl.stop()
		return nil, err
	}
	return cl, nil
}

func (cl *cluster) startCoord() error {
	p, err := startProc(cl.bin, cl.coordArgs, "vaschedd: listening on ", 30*time.Second)
	if err != nil {
		return err
	}
	cl.coord = p
	return nil
}

func (cl *cluster) stop() {
	cl.coord.kill()
	for _, w := range cl.workers {
		w.kill()
	}
}

// injectCrash waits until frac of the planned jobs are terminal, then
// SIGKILLs the coordinator (no drain, torn WAL) and relaunches it over
// the same data directory on a fresh port — the crash-recovery path the
// durability tests prove, exercised here under live client load.
func (d *driver) injectCrash(ctx context.Context, cl *cluster, frac float64, totalJobs int) {
	threshold := int64(frac * float64(totalJobs))
	if threshold < 1 {
		threshold = 1
	}
	for d.terminals.Load() < threshold {
		if ctx.Err() != nil {
			return
		}
		sleepCtx(ctx, 20*time.Millisecond)
	}
	cl.coord.kill()
	if err := cl.startCoord(); err != nil {
		// Leave the dead URL in place: clients keep erroring, the run
		// times out, and the timeout error names the real failure.
		fmt.Fprintf(os.Stderr, "vaschedload: restart after injected crash failed: %v\n", err)
		return
	}
	d.tgt.set(cl.coord.url)
	d.tally.restarts.Add(1)
}

// laneWeightString renders the configured smooth-WRR weights for the
// report, e.g. "16/4/1".
func laneWeightString() string {
	w := tenant.Weights()
	parts := make([]string, len(w))
	for i, v := range w {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, "/")
}
