package main

import (
	"fmt"
	"math/rand"
)

// jobSpec is one planned request in the workload mix.
type jobSpec struct {
	Experiment string
	Adaptive   bool // submit ext-adapt with an adaptive sampling config
	Lane       string
	Tenant     string
	// Cancel marks the job for a mid-flight DELETE after submission —
	// the cancellation spice in the fault mix.
	Cancel bool
	// Burst marks the job as part of the quota-burst phase: submitted
	// back-to-back on one tenant without waiting for completions, so the
	// run provably exercises 429 + Retry-After backpressure.
	Burst bool
}

// expWeight is one experiment's share of the mix. The mix is dominated
// by cheap table5/sann jobs (the "millions of users" steady traffic)
// with heavier fig-class and adaptive jobs as spice, mirroring a real
// mixed-tenant workload where most requests are small.
type expWeight struct {
	id       string
	adaptive bool
	weight   float64
}

var defaultExpMix = []expWeight{
	{id: "table5", weight: 0.58},
	{id: "sann", weight: 0.22},
	{id: "fig15", weight: 0.07},
	{id: "fig6", weight: 0.06},
	{id: "fig4", weight: 0.03},
	{id: "ext-adapt", weight: 0.02},
	{id: "ext-adapt", adaptive: true, weight: 0.02},
}

// laneMix mirrors production shape: interactive dominates, batch is
// substantial, control is rare operator traffic. (The service's
// smooth-WRR weights then decide who wins contended dequeues.)
var laneMix = []struct {
	lane   string
	weight float64
}{
	{"interactive", 0.60},
	{"batch", 0.30},
	{"control", 0.10},
}

// buildMix deterministically expands (seed, jobs, tenants, cancelFrac,
// burstFrac) into the full request plan. The same arguments always
// produce byte-identical plans — the run's randomness is all here, up
// front, so a failing run can be replayed exactly by its seed.
func buildMix(seed int64, jobs, tenants int, cancelFrac, burstFrac float64) []jobSpec {
	rng := rand.New(rand.NewSource(seed))
	specs := make([]jobSpec, jobs)
	burst := int(burstFrac * float64(jobs))
	for i := range specs {
		s := &specs[i]
		r := rng.Float64()
		acc := 0.0
		for _, w := range defaultExpMix {
			acc += w.weight
			if r < acc || w.id == defaultExpMix[len(defaultExpMix)-1].id {
				s.Experiment, s.Adaptive = w.id, w.adaptive
				if r < acc {
					break
				}
			}
		}
		r = rng.Float64()
		acc = 0.0
		s.Lane = laneMix[len(laneMix)-1].lane
		for _, w := range laneMix {
			acc += w.weight
			if r < acc {
				s.Lane = w.lane
				break
			}
		}
		s.Tenant = fmt.Sprintf("tenant-%d", rng.Intn(tenants))
		s.Cancel = rng.Float64() < cancelFrac
		if i >= jobs-burst {
			// The burst tail all lands on one tenant, in the batch lane,
			// with the cheapest experiment: its point is admission
			// pressure, not compute.
			s.Experiment, s.Adaptive = "table5", false
			s.Lane = "batch"
			s.Tenant = "tenant-0"
			s.Cancel = false
			s.Burst = true
		}
	}
	return specs
}

// mixSummary tallies a plan for the run report.
func mixSummary(specs []jobSpec) map[string]int {
	m := map[string]int{}
	for _, s := range specs {
		m["exp:"+s.Experiment]++
		m["lane:"+s.Lane]++
		m["tenant:"+s.Tenant]++
		if s.Cancel {
			m["cancel"]++
		}
		if s.Burst {
			m["burst"]++
		}
		if s.Adaptive {
			m["adaptive"]++
		}
	}
	return m
}
