package deploy

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vasched/internal/miniyaml"
)

// loadManifests parses every deploy/k8s/*.yaml into (file, doc) pairs.
func loadManifests(t *testing.T) map[string][]any {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("k8s", "*.yaml"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no manifests under deploy/k8s (err=%v)", err)
	}
	out := map[string][]any{}
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		docs, err := miniyaml.Parse(string(raw))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(docs) == 0 {
			t.Fatalf("%s: no documents", path)
		}
		out[path] = docs
	}
	return out
}

// find returns the first document with the given kind and name.
func find(t *testing.T, manifests map[string][]any, kind, name string) any {
	t.Helper()
	for _, docs := range manifests {
		for _, doc := range docs {
			k, _ := miniyaml.GetString(doc, "kind")
			n, _ := miniyaml.GetString(doc, "metadata", "name")
			if k == kind && n == name {
				return doc
			}
		}
	}
	t.Fatalf("no %s %q in deploy/k8s", kind, name)
	return nil
}

// labelsMatch asserts every key in selector appears with the same value
// in labels — the check kubectl apply defers to admission time.
func labelsMatch(t *testing.T, what string, selector, labels any) {
	t.Helper()
	sel, ok := selector.(map[string]any)
	if !ok || len(sel) == 0 {
		t.Fatalf("%s: selector is %#v", what, selector)
	}
	lab, _ := labels.(map[string]any)
	for k, v := range sel {
		if lab[k] != v {
			t.Errorf("%s: selector %s=%v not carried by labels %v", what, k, v, lab)
		}
	}
}

// TestManifestsWellFormed is the kubectl-dry-run-shaped gate: every
// document parses in the supported YAML subset and carries the fields
// the API server would demand first.
func TestManifestsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for path, docs := range loadManifests(t) {
		for i, doc := range docs {
			where := fmt.Sprintf("%s doc %d", path, i)
			api, ok := miniyaml.GetString(doc, "apiVersion")
			if !ok || api == "" {
				t.Errorf("%s: missing apiVersion", where)
			}
			kind, ok := miniyaml.GetString(doc, "kind")
			if !ok || kind == "" {
				t.Errorf("%s: missing kind", where)
			}
			name, ok := miniyaml.GetString(doc, "metadata", "name")
			if !ok || name == "" {
				t.Errorf("%s: missing metadata.name", where)
			}
			if key := kind + "/" + name; seen[key] {
				t.Errorf("%s: duplicate object %s", where, key)
			} else {
				seen[key] = true
			}
			if app, _ := miniyaml.GetString(doc, "metadata", "labels", "app"); app != "vaschedd" {
				t.Errorf("%s: metadata.labels.app = %q, want vaschedd", where, app)
			}
		}
	}
	for _, want := range []string{
		"Deployment/vaschedd-coordinator", "PersistentVolumeClaim/vaschedd-wal", "Service/vaschedd",
		"Deployment/vaschedd-worker", "Service/vaschedd-workers", "HorizontalPodAutoscaler/vaschedd-worker",
	} {
		if !seen[want] {
			t.Errorf("missing object %s", want)
		}
	}
}

func TestCoordinatorDeployment(t *testing.T) {
	manifests := loadManifests(t)
	dep := find(t, manifests, "Deployment", "vaschedd-coordinator")

	sel, _ := miniyaml.Get(dep, "spec", "selector", "matchLabels")
	labels, _ := miniyaml.Get(dep, "spec", "template", "metadata", "labels")
	labelsMatch(t, "coordinator deployment", sel, labels)

	// One replica over a Recreate strategy: the WAL PVC is RWO, and
	// epoch fencing (not rolling overlap) is the handover mechanism.
	if n, _ := miniyaml.GetInt(dep, "spec", "replicas"); n != 1 {
		t.Errorf("coordinator replicas = %d, want 1 (single WAL owner)", n)
	}
	if s, _ := miniyaml.GetString(dep, "spec", "strategy", "type"); s != "Recreate" {
		t.Errorf("coordinator strategy = %q, want Recreate", s)
	}

	c, ok := miniyaml.Get(dep, "spec", "template", "spec", "containers", "0")
	if !ok {
		t.Fatal("coordinator has no containers")
	}
	if img, _ := miniyaml.GetString(c, "image"); !strings.Contains(img, "vaschedd") {
		t.Errorf("container image = %q", img)
	}
	if path, _ := miniyaml.GetString(c, "readinessProbe", "httpGet", "path"); path != "/healthz" {
		t.Errorf("readiness path = %q, want /healthz", path)
	}
	port, _ := miniyaml.GetInt(c, "readinessProbe", "httpGet", "port")
	cport, _ := miniyaml.GetInt(c, "ports", "0", "containerPort")
	if port != cport {
		t.Errorf("readiness port %d != containerPort %d", port, cport)
	}

	// The WAL chain: -data-dir arg → volumeMount → volume → PVC, and
	// the PVC object exists with a usable access mode.
	args := argStrings(t, c)
	dataDir := argValue(args, "-data-dir")
	if dataDir == "" {
		t.Fatal("coordinator args carry no -data-dir (WAL disabled?)")
	}
	mountName := ""
	if mounts, ok := miniyaml.Get(c, "volumeMounts"); ok {
		for _, m := range mounts.([]any) {
			if mp, _ := miniyaml.GetString(m, "mountPath"); mp == dataDir {
				mountName, _ = miniyaml.GetString(m, "name")
			}
		}
	}
	if mountName == "" {
		t.Fatalf("no volumeMount covers -data-dir %s", dataDir)
	}
	claim := ""
	if vols, ok := miniyaml.Get(dep, "spec", "template", "spec", "volumes"); ok {
		for _, v := range vols.([]any) {
			if n, _ := miniyaml.GetString(v, "name"); n == mountName {
				claim, _ = miniyaml.GetString(v, "persistentVolumeClaim", "claimName")
			}
		}
	}
	if claim == "" {
		t.Fatalf("volume %q is not PVC-backed", mountName)
	}
	pvc := find(t, manifests, "PersistentVolumeClaim", claim)
	if mode, _ := miniyaml.GetString(pvc, "spec", "accessModes", "0"); mode != "ReadWriteOnce" {
		t.Errorf("PVC access mode = %q", mode)
	}

	// The coordinator's -workers flag must point at the worker Service's
	// name and port, or the fleet silently idles.
	workersURL := argValue(args, "-workers")
	svc := find(t, manifests, "Service", "vaschedd-workers")
	svcPort, _ := miniyaml.GetInt(svc, "spec", "ports", "0", "port")
	if want := fmt.Sprintf("http://vaschedd-workers:%d", svcPort); workersURL != want {
		t.Errorf("-workers = %q, want %q", workersURL, want)
	}

	// The client Service routes to this deployment.
	api := find(t, manifests, "Service", "vaschedd")
	apiSel, _ := miniyaml.Get(api, "spec", "selector")
	labelsMatch(t, "api service", apiSel, labels)
	if p, _ := miniyaml.GetInt(api, "spec", "ports", "0", "targetPort"); p != cport {
		t.Errorf("api service targetPort %d != containerPort %d", p, cport)
	}
}

func TestWorkerFleet(t *testing.T) {
	manifests := loadManifests(t)
	dep := find(t, manifests, "Deployment", "vaschedd-worker")

	sel, _ := miniyaml.Get(dep, "spec", "selector", "matchLabels")
	labels, _ := miniyaml.Get(dep, "spec", "template", "metadata", "labels")
	labelsMatch(t, "worker deployment", sel, labels)

	c, ok := miniyaml.Get(dep, "spec", "template", "spec", "containers", "0")
	if !ok {
		t.Fatal("worker has no containers")
	}
	args := argStrings(t, c)
	if len(args) == 0 || args[0] != "-worker" {
		t.Errorf("worker args = %v, want -worker mode first", args)
	}
	if path, _ := miniyaml.GetString(c, "readinessProbe", "httpGet", "path"); path != "/healthz" {
		t.Errorf("worker readiness path = %q", path)
	}
	if _, ok := miniyaml.GetString(c, "resources", "requests", "cpu"); !ok {
		t.Error("worker has no CPU request (the HPA's utilisation target needs one)")
	}

	svc := find(t, manifests, "Service", "vaschedd-workers")
	svcSel, _ := miniyaml.Get(svc, "spec", "selector")
	labelsMatch(t, "worker service", svcSel, labels)
	port, _ := miniyaml.GetInt(svc, "spec", "ports", "0", "targetPort")
	cport, _ := miniyaml.GetInt(c, "ports", "0", "containerPort")
	if port != cport {
		t.Errorf("worker service targetPort %d != containerPort %d", port, cport)
	}

	hpa := find(t, manifests, "HorizontalPodAutoscaler", "vaschedd-worker")
	if kind, _ := miniyaml.GetString(hpa, "spec", "scaleTargetRef", "kind"); kind != "Deployment" {
		t.Errorf("HPA targets kind %q", kind)
	}
	if name, _ := miniyaml.GetString(hpa, "spec", "scaleTargetRef", "name"); name != "vaschedd-worker" {
		t.Errorf("HPA targets %q, want vaschedd-worker", name)
	}
	minR, _ := miniyaml.GetInt(hpa, "spec", "minReplicas")
	maxR, _ := miniyaml.GetInt(hpa, "spec", "maxReplicas")
	repl, _ := miniyaml.GetInt(dep, "spec", "replicas")
	if minR < 1 || minR > maxR {
		t.Errorf("HPA range [%d, %d] is not sane", minR, maxR)
	}
	if repl < minR || repl > maxR {
		t.Errorf("worker replicas %d outside HPA range [%d, %d]", repl, minR, maxR)
	}
	if mt, _ := miniyaml.GetString(hpa, "spec", "metrics", "0", "resource", "name"); mt != "cpu" {
		t.Errorf("HPA metric = %q, want cpu", mt)
	}
}

// TestDockerfile pins the image contract the manifests assume: a
// multi-stage build producing the vaschedd entrypoint with the WAL
// volume at the path the coordinator mounts its PVC.
func TestDockerfile(t *testing.T) {
	raw, err := os.ReadFile("Dockerfile")
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if n := strings.Count(text, "\nFROM ") + boolToInt(strings.HasPrefix(text, "FROM ")); n < 2 {
		t.Errorf("Dockerfile has %d stages, want a multi-stage build", n)
	}
	for _, want := range []string{
		"CGO_ENABLED=0", "./cmd/vaschedd",
		`ENTRYPOINT ["/usr/local/bin/vaschedd"]`, "VOLUME /var/lib/vaschedd",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Dockerfile missing %q", want)
		}
	}
}

// argStrings flattens a container's args to strings.
func argStrings(t *testing.T, container any) []string {
	t.Helper()
	raw, ok := miniyaml.Get(container, "args")
	if !ok {
		return nil
	}
	var out []string
	for _, a := range raw.([]any) {
		s, ok := a.(string)
		if !ok {
			s = fmt.Sprint(a)
		}
		out = append(out, s)
	}
	return out
}

// argValue returns the value following a flag in an args list.
func argValue(args []string, flag string) string {
	for i, a := range args {
		if a == flag && i+1 < len(args) {
			return args[i+1]
		}
	}
	return ""
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
