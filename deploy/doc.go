// Package deploy holds the container and Kubernetes deployment
// artefacts for vaschedd: a multi-stage Dockerfile producing the
// static coordinator/worker binary, and manifests for a WAL-backed
// coordinator Deployment (PVC, Recreate strategy, /healthz probes)
// plus an autoscaled worker fleet (Deployment, Service, HPA). The
// package's tests parse every manifest with internal/miniyaml and
// schema-validate the wiring — selector/label agreement, probe paths,
// the WAL volume chain, and the coordinator→workers Service reference —
// so drift fails `go test ./...` instead of a cluster rollout.
package deploy
