package vasched_test

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"vasched"
)

var (
	platOnce sync.Once
	platVal  *vasched.Platform
	platErr  error
)

func testPlatform(t *testing.T) *vasched.Platform {
	t.Helper()
	platOnce.Do(func() {
		opt := vasched.DefaultOptions()
		opt.GridSize = 128 // keep façade tests fast
		platVal, platErr = vasched.NewPlatform(opt)
	})
	if platErr != nil {
		t.Fatal(platErr)
	}
	return platVal
}

func TestDefaultOptionsBuild(t *testing.T) {
	p := testPlatform(t)
	if p.NumCores() != 20 {
		t.Fatalf("cores = %d", p.NumCores())
	}
	levels := p.VoltageLevels()
	if len(levels) != 9 || levels[0] != 0.6 || levels[len(levels)-1] != 1.0 {
		t.Fatalf("ladder = %v", levels)
	}
	for core := 0; core < p.NumCores(); core++ {
		if f := p.CoreFmaxGHz(core); f < 2.5 || f > 4.2 {
			t.Fatalf("core %d Fmax %v GHz implausible", core, f)
		}
		if w := p.CoreStaticPowerW(core); w <= 0 || w > 10 {
			t.Fatalf("core %d static %v W implausible", core, w)
		}
	}
}

func TestInvalidOptions(t *testing.T) {
	bad := vasched.DefaultOptions()
	bad.Cores = 0
	if _, err := vasched.NewPlatform(bad); err == nil {
		t.Fatal("zero cores accepted")
	}
	bad = vasched.DefaultOptions()
	bad.DieAreaMM2 = -1
	if _, err := vasched.NewPlatform(bad); err == nil {
		t.Fatal("negative area accepted")
	}
	bad = vasched.DefaultOptions()
	bad.VthSigmaOverMu = 3
	if _, err := vasched.NewPlatform(bad); err == nil {
		t.Fatal("absurd sigma accepted")
	}
}

func TestSPECApps(t *testing.T) {
	apps := vasched.SPECApps()
	if len(apps) != 14 {
		t.Fatalf("pool = %v", apps)
	}
}

func TestSystemConfigValidation(t *testing.T) {
	p := testPlatform(t)
	if _, err := p.NewSystem(vasched.SystemConfig{Scheduler: "LIFO"}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := p.NewSystem(vasched.SystemConfig{Mode: "TurboFreq"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := p.NewSystem(vasched.SystemConfig{Mode: vasched.ModeDVFS, Manager: "PID"}); err == nil {
		t.Fatal("unknown manager accepted")
	}
	if _, err := p.NewSystem(vasched.SystemConfig{Mode: vasched.ModeDVFS}); err == nil {
		t.Fatal("DVFS without budget accepted")
	}
}

func TestRunNUniFreq(t *testing.T) {
	p := testPlatform(t)
	sys, err := p.NewSystem(vasched.SystemConfig{
		Scheduler: vasched.SchedVarFAppIPC,
		Mode:      vasched.ModeNUniFreq,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Run([]string{"bzip2", "mcf", "vortex"}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if st.MIPS <= 0 || st.AvgPowerW <= 0 || st.AvgFrequencyGHz <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if len(st.InstructionsM) != 3 {
		t.Fatalf("instructions = %v", st.InstructionsM)
	}
	// vortex (IPC 1.2) must out-retire mcf (IPC 0.1) on any schedule.
	if st.InstructionsM[2] <= st.InstructionsM[1] {
		t.Fatalf("vortex (%v M) should retire more than mcf (%v M)",
			st.InstructionsM[2], st.InstructionsM[1])
	}
	if st.MaxTempC <= 45 {
		t.Fatalf("max temp %v C at ambient?", st.MaxTempC)
	}
}

func TestRunDVFSHoldsBudget(t *testing.T) {
	p := testPlatform(t)
	sys, err := p.NewSystem(vasched.SystemConfig{
		Scheduler: vasched.SchedVarFAppIPC,
		Mode:      vasched.ModeDVFS,
		Manager:   vasched.ManagerLinOpt,
		PTargetW:  45,
		PCoreMaxW: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	apps := vasched.SPECApps()[:10]
	st, err := sys.Run(apps, 50)
	if err != nil {
		t.Fatal(err)
	}
	if st.AvgPowerW > 45*1.05 {
		t.Fatalf("power %v W far above 45 W budget", st.AvgPowerW)
	}
	if st.PowerDeviationPct <= 0 {
		t.Fatal("no deviation tracking in DVFS mode")
	}
}

func TestRunUnknownApp(t *testing.T) {
	p := testPlatform(t)
	sys, err := p.NewSystem(vasched.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run([]string{"doom"}, 10); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestDefaultManagerIsLinOpt(t *testing.T) {
	p := testPlatform(t)
	// Empty manager in DVFS mode defaults to LinOpt; empty PCoreMaxW gets
	// a sensible default.
	sys, err := p.NewSystem(vasched.SystemConfig{
		Mode:     vasched.ModeDVFS,
		PTargetW: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(vasched.SPECApps()[:4], 20); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentAPI(t *testing.T) {
	ids := vasched.ExperimentIDs()
	if len(ids) != 24 {
		t.Fatalf("ids = %v", ids)
	}
	found := false
	for _, id := range ids {
		if id == "ext-cluster" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ids missing ext-cluster: %v", ids)
	}
	out, err := vasched.RunExperiment("table5", vasched.ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bzip2") {
		t.Fatalf("table5 output missing apps:\n%s", out)
	}
	if _, err := vasched.RunExperiment("fig99", vasched.ScaleQuick); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := vasched.RunExperiment("table5", "huge"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestDieToDieVariation(t *testing.T) {
	// Two die indices from the same batch are different chips.
	a := testPlatform(t)
	opt := vasched.DefaultOptions()
	opt.GridSize = 128
	opt.DieIndex = 5
	b, err := vasched.NewPlatform(opt)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for core := 0; core < a.NumCores(); core++ {
		if a.CoreFmaxGHz(core) != b.CoreFmaxGHz(core) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different die indices produced identical chips")
	}
}

func TestRunExperimentResultMarshals(t *testing.T) {
	res, err := vasched.RunExperimentResult("sec74", vasched.ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"FreqRatio", "PowerRatio", "ED2Ratio"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("JSON missing %s: %s", key, blob)
		}
	}
	if res.Render() == "" {
		t.Fatal("typed result does not render")
	}
}

func TestCaptureTraceAndSparkline(t *testing.T) {
	p := testPlatform(t)
	sys, err := p.NewSystem(vasched.SystemConfig{
		Scheduler:    vasched.SchedVarFAppIPC,
		Mode:         vasched.ModeNUniFreq,
		CaptureTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Run([]string{"bzip2", "swim", "art", "gzip"}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Trace) == 0 {
		t.Fatal("no trace captured")
	}
	spark := vasched.Sparkline(st.Trace, func(p vasched.TracePoint) float64 { return p.PowerW }, 20)
	if spark == "" {
		t.Fatal("empty sparkline")
	}
	if n := len([]rune(spark)); n > 20 {
		t.Fatalf("sparkline width %d", n)
	}
}

func TestRunDynamicSingleEpoch(t *testing.T) {
	p := testPlatform(t)
	epochs, err := p.RunDynamic(vasched.DynamicConfig{DtMS: 2}, vasched.SPECApps()[:6], 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 1 {
		t.Fatalf("epochs = %d, want 1 (no horizon)", len(epochs))
	}
	st := epochs[0].Stats
	if st.MIPS <= 0 || st.AvgPowerW <= 0 || st.MaxTempC <= 0 || st.WearoutMax <= 0 {
		t.Fatalf("degenerate dynamic stats: %+v", st)
	}
	if epochs[0].Years != 0 || epochs[0].DVthMaxMV != 0 {
		t.Fatalf("fresh epoch mislabelled: %+v", epochs[0])
	}
}

func TestRunDynamicHorizonAges(t *testing.T) {
	if testing.Short() {
		t.Skip("horizon re-characterises the die per epoch")
	}
	p := testPlatform(t)
	epochs, err := p.RunDynamic(vasched.DynamicConfig{DtMS: 2, HorizonYears: []float64{5}},
		vasched.SPECApps()[:6], 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 {
		t.Fatalf("epochs = %d, want 2", len(epochs))
	}
	aged := epochs[1]
	if aged.Years != 5 || aged.DVthMaxMV <= 0 {
		t.Fatalf("aged epoch: %+v", aged)
	}
	if aged.MinFmaxGHz > epochs[0].MinFmaxGHz {
		t.Fatal("aged die bins faster than fresh")
	}
}

func TestRunDynamicValidation(t *testing.T) {
	p := testPlatform(t)
	if _, err := p.RunDynamic(vasched.DynamicConfig{Scheduler: "nope"}, vasched.SPECApps()[:2], 10); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := p.RunDynamic(vasched.DynamicConfig{}, []string{"doom"}, 10); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := p.RunDynamic(vasched.DynamicConfig{HorizonYears: []float64{3, 2}}, vasched.SPECApps()[:2], 10); err == nil {
		t.Fatal("non-increasing horizon accepted")
	}
}
