# Development targets for the vasched repository. The repo is pure Go
# with no dependencies outside the standard library, so everything here
# is just the go tool.

GO ?= go

.PHONY: all build test vet check race bench clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector; internal/farm and
# cmd/vaschedd are the concurrency-heavy packages this exists for.
race:
	$(GO) test -race ./...

# check is the tier-1+ gate: vet, build, and the race-enabled test suite.
check: vet build race

# bench runs the paper-artefact benchmarks (quick scale) including the
# farm serial-vs-parallel comparison.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
