# Development targets for the vasched repository. The repo is pure Go
# with no dependencies outside the standard library, so everything here
# is just the go tool.

GO ?= go

.PHONY: all build test vet check race bench benchsmoke ci fuzzseed benchcheck benchsnap clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector; internal/farm and
# cmd/vaschedd are the concurrency-heavy packages this exists for.
race:
	$(GO) test -race ./...

# check is the tier-1+ gate: vet, build, the race-enabled test suite, and
# one pass of every benchmark (-benchtime=1x) so the bench code can't
# silently rot between perf passes.
check: vet build race benchsmoke

benchsmoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# bench runs the paper-artefact benchmarks (quick scale) including the
# farm serial-vs-parallel comparison.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# ci is the full gate: vet, build, race-enabled tests (includes the
# golden-file experiment test), the lp and anneal fuzz targets run for
# 10s each, and a benchmark pass of the hot-path micro-benchmarks
# compared against the newest committed BENCH_*.json — more than 20%
# ns/op regression fails. Benchmark baselines are machine-specific:
# refresh with `make benchsnap` when the reference machine changes.
ci: vet build race fuzzseed benchcheck

fuzzseed:
	$(GO) test -fuzz FuzzSolve -fuzztime 10s ./internal/lp
	$(GO) test -fuzz FuzzSolve -fuzztime 10s ./internal/anneal

# benchcheck compares the micro-benchmarks (not the multi-second paper
# artefacts) against the committed baseline without writing a snapshot.
benchcheck:
	$(GO) run ./cmd/benchstatus -check -nowrite \
		-pkgs ./internal/grf,./internal/thermal,./internal/linsolve,./internal/lp,./internal/pm,./internal/anneal,./internal/cpusim,./internal/fft

# benchsnap records a fresh full-suite snapshot (BENCH_<date>.json).
benchsnap:
	$(GO) run ./cmd/benchstatus

clean:
	$(GO) clean ./...
