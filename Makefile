# Development targets for the vasched repository. The repo is pure Go
# with no dependencies outside the standard library, so everything here
# is just the go tool.

GO ?= go

.PHONY: all build test vet lint check race bench benchsmoke ci fuzzseed benchcheck benchsnap cover goldens goldens-check loadtest loadsnap loadcheck clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint mirrors the hosted lint job: vet plus the pinned external
# analysers (versions must match .github/workflows/ci.yml). `go run`
# caches the resolved modules, so repeat runs are cheap; first run needs
# network access.
STATICCHECK_VERSION = 2025.1.1
GOVULNCHECK_VERSION = v1.1.4

lint: vet
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# race runs the full suite under the race detector; internal/farm and
# cmd/vaschedd are the concurrency-heavy packages this exists for.
race:
	$(GO) test -race ./...

# check is the tier-1+ gate: vet, build, the race-enabled test suite, and
# one pass of every benchmark (-benchtime=1x) so the bench code can't
# silently rot between perf passes.
check: vet build race benchsmoke

benchsmoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# bench runs the paper-artefact benchmarks (quick scale) including the
# farm serial-vs-parallel comparison.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# ci is the full gate: vet, build, race-enabled tests (includes the
# golden-file experiment test), the coverage gate, the lp / anneal /
# shard-codec fuzz targets run for 10s each, and a benchmark pass of the
# hot-path micro-benchmarks compared against the newest committed
# BENCH_*.json — more than 20% ns/op regression fails. Benchmark
# baselines are machine-specific: refresh with `make benchsnap` when the
# reference machine changes. loadcheck guards delivered capacity the
# same way against the committed LOAD_*.json. The hosted pipeline
# (.github/workflows/ci.yml) runs the same steps as parallel jobs.
ci: lint build race goldens-check cover fuzzseed benchcheck loadcheck

fuzzseed:
	$(GO) test -fuzz FuzzSolve -fuzztime 10s ./internal/lp
	$(GO) test -fuzz FuzzSolve -fuzztime 10s ./internal/anneal
	$(GO) test -fuzz FuzzShardCodec -fuzztime 10s ./internal/cluster
	$(GO) test -fuzz FuzzWALRecord -fuzztime 10s ./internal/jobstore
	$(GO) test -fuzz FuzzConfigHash -fuzztime 10s ./internal/diecache

# cover prints per-package statement coverage and fails if any of the
# gated packages (the concurrency- and protocol-heavy ones) drops below
# 80%. Numbers are recorded in EXPERIMENTS.md ("Coverage gate").
COVER_GATED = vasched/internal/cluster vasched/internal/pm vasched/internal/farm vasched/internal/trace vasched/internal/jobstore vasched/internal/tenant vasched/internal/diecache vasched/internal/adapt vasched/internal/metrics vasched/internal/loadsnap vasched/internal/miniyaml vasched/internal/wearout vasched/cmd/vaschedload

# The scenario engine carries a higher bar: it is the only package whose
# loop integrates four subsystems (thermal, power, scheduling, wearout)
# per tick, so untested branches there are compound failures.
COVER_GATED_85 = vasched/internal/dynamic

cover:
	$(GO) test -count=1 -cover ./... | tee /tmp/vasched-cover.txt
	@fail=0; \
	gate() { \
		pct=$$(grep -E "^ok[[:space:]]+$$1[[:space:]]" /tmp/vasched-cover.txt | grep -oE '[0-9.]+% of statements' | grep -oE '^[0-9.]+'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage line for $$1"; return 1; \
		elif awk "BEGIN{exit !($$pct < $$2)}"; then echo "cover: $$1 at $$pct% (< $$2%)"; return 1; \
		else echo "cover: $$1 at $$pct% (gate $$2%)"; fi; \
	}; \
	for pkg in $(COVER_GATED); do gate $$pkg 80 || fail=1; done; \
	for pkg in $(COVER_GATED_85); do gate $$pkg 85 || fail=1; done; \
	exit $$fail

# goldens regenerates every committed golden from the current code;
# goldens-check additionally fails if that changed anything (CI's
# committed-goldens-match-reality gate).
goldens:
	$(GO) test ./internal/experiments -run 'TestGolden$$' -update

goldens-check: goldens
	git diff --exit-code internal/experiments/testdata/golden

# benchcheck compares the micro-benchmarks (not the multi-second paper
# artefacts) against the committed baseline without writing a snapshot.
benchcheck:
	$(GO) run ./cmd/benchstatus -check -nowrite \
		-pkgs ./internal/grf,./internal/thermal,./internal/linsolve,./internal/lp,./internal/pm,./internal/anneal,./internal/cpusim,./internal/fft,./internal/jobstore,./internal/diecache,./internal/varmodel,./internal/adapt

# benchsnap records a fresh full-suite snapshot (BENCH_<date>.json).
benchsnap:
	$(GO) run ./cmd/benchstatus

# loadtest is the SLO-asserted load smoke: spawn a real coordinator,
# drive 1,000 seeded mixed-tenant jobs through the three lanes with
# mid-flight cancels, a quota burst, and an injected SIGKILL-restart,
# and fail on any SLO violation, failed job, or lost job. The seed makes
# the workload (not the timings) reproducible; ~60s on the reference
# machine.
LOADFLAGS = -jobs 1000 -tenants 3 -clients 16 -seed 42 -tenant-quota 8 -kill-at 0.4 -timeout 8m

loadtest:
	$(GO) run ./cmd/vaschedload $(LOADFLAGS)

# loadsnap records a LOAD_<date>.json capacity baseline in the repo
# root (commit it, like the BENCH_*.json baselines). Capacity numbers
# are machine-specific: refresh on the reference machine.
loadsnap:
	$(GO) run ./cmd/vaschedload $(LOADFLAGS) -out .

# loadcheck reruns the load smoke and gates delivered capacity against
# the newest committed LOAD_*.json: a sustained jobs/s drop beyond 20%
# fails (host-fingerprint mismatches downgrade to a loud advisory).
loadcheck:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/vaschedload $(LOADFLAGS) -out $$tmp && \
	$(GO) run ./cmd/benchstatus -load $$tmp/LOAD_*.json -check

clean:
	$(GO) clean ./...
