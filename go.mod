module vasched

go 1.22
